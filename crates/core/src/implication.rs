//! Word-level logic implication (Section 3.1 of the paper).
//!
//! Every gate kind has forward and backward implication rules expressed over
//! three-valued cubes:
//!
//! * **Boolean gates** use bit-parallel 3-valued logic,
//! * **arithmetic units** use 3-valued ripple addition/subtraction
//!   (the Fig. 3 adder rule: the missing operand is `output − operand`),
//! * **comparators** translate cubes to `[min, max]` ranges, tighten the
//!   ranges from the output value, and map back to cubes MSB-first
//!   (the Fig. 4 rule),
//! * **multiplexors** use cube union / null-intersection reasoning,
//! * frame-connection buffers (the unrolled form of registers) propagate in
//!   both directions.
//!
//! The [`Propagator`] runs these rules to a fixed point over an event queue;
//! any contradiction surfaces as a [`Conflict`].

use crate::assignment::{Assignment, Conflict};
use std::collections::VecDeque;
use wlac_bv::arith::{add3, eq3, ge3, gt3, le3, lt3, mul3, ne3, shift3_var, sub3};
use wlac_bv::range::{refine_to_range, saturating_dec, saturating_inc};
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{Gate, GateId, GateKind, NetId, Netlist};

/// Counters describing the implication effort (reported in [`crate::CheckStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImplicationStats {
    /// Number of gate implication evaluations.
    pub gate_evaluations: u64,
    /// Number of net refinements that added information.
    pub refinements: u64,
}

/// Forward 3-valued evaluation of a gate from its current input cubes.
pub(crate) fn forward_eval(netlist: &Netlist, gate: &Gate, asg: &Assignment) -> Bv3 {
    let input = |i: usize| asg.value(gate.inputs[i]).clone();
    let out_width = netlist.net_width(gate.output);
    match &gate.kind {
        GateKind::Const(v) => Bv3::from_bv(v),
        GateKind::Buf | GateKind::Dff { .. } => input(0),
        GateKind::Not => input(0).not3(),
        GateKind::And => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.and3(asg.value(*n))),
        GateKind::Or => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.or3(asg.value(*n))),
        GateKind::Xor => gate
            .inputs
            .iter()
            .skip(1)
            .fold(input(0), |acc, n| acc.xor3(asg.value(*n))),
        GateKind::ReduceAnd => {
            let v = input(0);
            let any_zero = (0..v.width()).any(|i| v.bit(i) == Tv::Zero);
            let all_one = (0..v.width()).all(|i| v.bit(i) == Tv::One);
            Bv3::from_tv(if any_zero {
                Tv::Zero
            } else if all_one {
                Tv::One
            } else {
                Tv::X
            })
        }
        GateKind::ReduceOr => {
            let v = input(0);
            let any_one = (0..v.width()).any(|i| v.bit(i) == Tv::One);
            let all_zero = (0..v.width()).all(|i| v.bit(i) == Tv::Zero);
            Bv3::from_tv(if any_one {
                Tv::One
            } else if all_zero {
                Tv::Zero
            } else {
                Tv::X
            })
        }
        GateKind::ReduceXor => {
            let v = input(0);
            if v.is_fully_known() {
                let ones = (0..v.width()).filter(|i| v.bit(*i) == Tv::One).count();
                Bv3::from_tv(Tv::from_bool(ones % 2 == 1))
            } else {
                Bv3::from_tv(Tv::X)
            }
        }
        GateKind::Add => add3(&input(0), &input(1)).0,
        GateKind::Sub => sub3(&input(0), &input(1)).0,
        GateKind::Mul => mul3(&input(0), &input(1)),
        GateKind::Shl => shift3_var(&input(0), &input(1), true),
        GateKind::Shr => shift3_var(&input(0), &input(1), false),
        GateKind::Eq => Bv3::from_tv(eq3(&input(0), &input(1))),
        GateKind::Ne => Bv3::from_tv(ne3(&input(0), &input(1))),
        GateKind::Lt => Bv3::from_tv(lt3(&input(0), &input(1))),
        GateKind::Le => Bv3::from_tv(le3(&input(0), &input(1))),
        GateKind::Gt => Bv3::from_tv(gt3(&input(0), &input(1))),
        GateKind::Ge => Bv3::from_tv(ge3(&input(0), &input(1))),
        GateKind::Mux => {
            let sel = input(0).to_tv();
            match sel {
                Tv::One => input(1),
                Tv::Zero => input(2),
                Tv::X => input(1).union(&input(2)),
            }
        }
        GateKind::Concat => input(0).concat(&input(1)),
        GateKind::Slice { lo } => input(0).slice(*lo, out_width),
        GateKind::ZeroExt => input(0).resize(out_width),
    }
}

/// Proposed refinements (net, cube) produced by one gate implication step.
type Proposals = Vec<(NetId, Bv3)>;

/// Computes forward and backward implications for one gate.
///
/// The returned proposals are merged into the assignment by the caller; a
/// proposal never *weakens* a value (merging is monotone), and conflicting
/// proposals are detected by [`Assignment::refine`].
pub(crate) fn imply_gate(netlist: &Netlist, gate: &Gate, asg: &Assignment) -> Proposals {
    let mut out = Vec::new();
    // Forward.
    out.push((gate.output, forward_eval(netlist, gate, asg)));
    // Backward.
    backward(netlist, gate, asg, &mut out);
    out
}

fn backward(netlist: &Netlist, gate: &Gate, asg: &Assignment, out: &mut Proposals) {
    let y = asg.value(gate.output).clone();
    let input = |i: usize| asg.value(gate.inputs[i]).clone();
    match &gate.kind {
        GateKind::Const(_) => {}
        GateKind::Buf | GateKind::Dff { .. } => out.push((gate.inputs[0], y)),
        GateKind::Not => out.push((gate.inputs[0], y.not3())),
        GateKind::And | GateKind::Or => {
            let is_and = gate.kind == GateKind::And;
            let width = y.width();
            let values: Vec<Bv3> = gate.inputs.iter().map(|n| asg.value(*n).clone()).collect();
            let mut proposals: Vec<Bv3> = values.clone();
            for bit in 0..width {
                let controlling = if is_and { Tv::Zero } else { Tv::One };
                let passive = !controlling;
                match y.bit(bit) {
                    t if t == passive => {
                        // AND output 1 / OR output 0: every input takes the passive value.
                        for p in proposals.iter_mut() {
                            p.set_bit(bit, passive);
                        }
                    }
                    t if t == controlling => {
                        // Exactly one undetermined input left while all others
                        // are passive: it must take the controlling value.
                        let undecided: Vec<usize> = values
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| v.bit(bit) != passive)
                            .map(|(i, _)| i)
                            .collect();
                        if undecided.len() == 1 && values[undecided[0]].bit(bit) == Tv::X {
                            proposals[undecided[0]].set_bit(bit, controlling);
                        }
                    }
                    _ => {}
                }
            }
            for (net, cube) in gate.inputs.iter().zip(proposals) {
                out.push((*net, cube));
            }
        }
        GateKind::Xor => {
            let width = y.width();
            let values: Vec<Bv3> = gate.inputs.iter().map(|n| asg.value(*n).clone()).collect();
            let mut proposals: Vec<Bv3> = values.clone();
            for bit in 0..width {
                if !y.bit(bit).is_known() {
                    continue;
                }
                let unknown: Vec<usize> = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.bit(bit).is_known())
                    .map(|(i, _)| i)
                    .collect();
                if unknown.len() == 1 {
                    let mut parity = y.bit(bit);
                    for (i, v) in values.iter().enumerate() {
                        if i != unknown[0] {
                            parity = parity ^ v.bit(bit);
                        }
                    }
                    proposals[unknown[0]].set_bit(bit, parity);
                }
            }
            for (net, cube) in gate.inputs.iter().zip(proposals) {
                out.push((*net, cube));
            }
        }
        GateKind::ReduceAnd => {
            let v = input(0);
            match y.to_tv() {
                Tv::One => out.push((gate.inputs[0], Bv3::from_bv(&Bv::ones(v.width())))),
                Tv::Zero => {
                    let unknown: Vec<usize> =
                        (0..v.width()).filter(|i| v.bit(*i) == Tv::X).collect();
                    let ones = (0..v.width()).filter(|i| v.bit(*i) == Tv::One).count();
                    if unknown.len() == 1 && ones == v.width() - 1 {
                        out.push((gate.inputs[0], v.with_bit(unknown[0], Tv::Zero)));
                    }
                }
                Tv::X => {}
            }
        }
        GateKind::ReduceOr => {
            let v = input(0);
            match y.to_tv() {
                Tv::Zero => out.push((gate.inputs[0], Bv3::from_bv(&Bv::zero(v.width())))),
                Tv::One => {
                    let unknown: Vec<usize> =
                        (0..v.width()).filter(|i| v.bit(*i) == Tv::X).collect();
                    let zeros = (0..v.width()).filter(|i| v.bit(*i) == Tv::Zero).count();
                    if unknown.len() == 1 && zeros == v.width() - 1 {
                        out.push((gate.inputs[0], v.with_bit(unknown[0], Tv::One)));
                    }
                }
                Tv::X => {}
            }
        }
        GateKind::ReduceXor => {
            let v = input(0);
            if let Some(target) = y.to_tv().to_bool() {
                let unknown: Vec<usize> = (0..v.width()).filter(|i| v.bit(*i) == Tv::X).collect();
                if unknown.len() == 1 {
                    let ones = (0..v.width()).filter(|i| v.bit(*i) == Tv::One).count();
                    let needed = target != (ones % 2 == 1);
                    out.push((
                        gate.inputs[0],
                        v.with_bit(unknown[0], Tv::from_bool(needed)),
                    ));
                }
            }
        }
        GateKind::Add => {
            // The Fig. 3 rule: each operand is output minus the other operand.
            out.push((gate.inputs[0], sub3(&y, &input(1)).0));
            out.push((gate.inputs[1], sub3(&y, &input(0)).0));
        }
        GateKind::Sub => {
            // y = a - b  ⇒  a = y + b,  b = a - y.
            out.push((gate.inputs[0], add3(&y, &input(1)).0));
            out.push((gate.inputs[1], sub3(&input(0), &y).0));
        }
        GateKind::Mul => {
            backward_mul(&y, &input(0), &input(1), gate, out);
        }
        GateKind::Shl | GateKind::Shr => {
            let left = gate.kind == GateKind::Shl;
            if let Some(amount) = input(1).to_bv().and_then(|v| v.to_u64()) {
                let amount = (amount as usize).min(y.width());
                let a = input(0);
                let mut refined = a.clone();
                for i in 0..y.width() {
                    // For a left shift, output bit i+amount equals input bit i.
                    let (out_bit, in_bit) = if left {
                        (i.checked_add(amount), i)
                    } else {
                        (i.checked_sub(amount), i)
                    };
                    if let Some(ob) = out_bit {
                        if ob < y.width() && y.bit(ob).is_known() {
                            refined.set_bit(in_bit, y.bit(ob));
                        }
                    }
                }
                out.push((gate.inputs[0], refined));
            }
        }
        GateKind::Eq | GateKind::Ne => {
            let equal_required = match (gate.kind == GateKind::Eq, y.to_tv()) {
                (true, Tv::One) | (false, Tv::Zero) => Some(true),
                (true, Tv::Zero) | (false, Tv::One) => Some(false),
                _ => None,
            };
            if equal_required == Some(true) {
                if let Some(meet) = input(0).intersect(&input(1)) {
                    out.push((gate.inputs[0], meet.clone()));
                    out.push((gate.inputs[1], meet));
                } else {
                    // Equality required but impossible: force a conflict by
                    // proposing the (empty) intersection through both sides.
                    out.push((gate.inputs[0], input(1)));
                }
            }
        }
        GateKind::Lt | GateKind::Le | GateKind::Gt | GateKind::Ge => {
            if let Some(truth) = y.to_tv().to_bool() {
                // Normalise everything to a strict or non-strict `a (<|<=) b`.
                let (a_idx, b_idx, strict) = match (&gate.kind, truth) {
                    (GateKind::Lt, true) => (0, 1, true),
                    (GateKind::Lt, false) => (1, 0, false), // b <= a
                    (GateKind::Le, true) => (0, 1, false),
                    (GateKind::Le, false) => (1, 0, true), // b < a
                    (GateKind::Gt, true) => (1, 0, true),  // b < a
                    (GateKind::Gt, false) => (0, 1, false),
                    (GateKind::Ge, true) => (1, 0, false),
                    (GateKind::Ge, false) => (0, 1, true),
                    _ => unreachable!(),
                };
                let a = asg.value(gate.inputs[a_idx]).clone();
                let b = asg.value(gate.inputs[b_idx]).clone();
                let (min_a, max_a) = (a.min_value(), a.max_value());
                let (min_b, max_b) = (b.min_value(), b.max_value());
                // a <(=) b: a <= max_b (- 1 if strict), b >= min_a (+ 1 if strict).
                let a_hi = if strict {
                    saturating_dec(&max_b)
                } else {
                    max_b.clone()
                };
                let b_lo = if strict {
                    saturating_inc(&min_a)
                } else {
                    min_a.clone()
                };
                let a_hi = if a_hi < max_a { a_hi } else { max_a };
                let b_lo = if b_lo > min_b { b_lo } else { min_b };
                match refine_to_range(&a, &min_a, &a_hi) {
                    Ok(refined) => out.push((gate.inputs[a_idx], refined)),
                    Err(_) => {
                        // No member of `a` satisfies the relation: force a conflict.
                        out.push((gate.output, Bv3::from_tv(Tv::from_bool(!truth))));
                    }
                }
                match refine_to_range(&b, &b_lo, &b.max_value()) {
                    Ok(refined) => out.push((gate.inputs[b_idx], refined)),
                    Err(_) => {
                        out.push((gate.output, Bv3::from_tv(Tv::from_bool(!truth))));
                    }
                }
            }
        }
        GateKind::Mux => {
            let sel = input(0);
            let t = input(1);
            let e = input(2);
            match sel.to_tv() {
                Tv::One => {
                    if let Some(meet) = t.intersect(&y) {
                        out.push((gate.inputs[1], meet));
                    }
                }
                Tv::Zero => {
                    if let Some(meet) = e.intersect(&y) {
                        out.push((gate.inputs[2], meet));
                    }
                }
                Tv::X => {
                    // Null intersection with the output rules a data input out
                    // and implies the select value (the paper's mux rule).
                    let t_possible = t.intersect(&y).is_some();
                    let e_possible = e.intersect(&y).is_some();
                    match (t_possible, e_possible) {
                        (true, false) => out.push((gate.inputs[0], Bv3::from_tv(Tv::One))),
                        (false, true) => out.push((gate.inputs[0], Bv3::from_tv(Tv::Zero))),
                        (false, false) => {
                            // Both impossible: conflict via contradictory select.
                            out.push((gate.inputs[0], Bv3::from_tv(Tv::One)));
                            out.push((gate.inputs[0], Bv3::from_tv(Tv::Zero)));
                        }
                        (true, true) => {}
                    }
                }
            }
        }
        GateKind::Concat => {
            let hi_w = netlist.net_width(gate.inputs[0]);
            let lo_w = netlist.net_width(gate.inputs[1]);
            out.push((gate.inputs[0], y.slice(lo_w, hi_w)));
            out.push((gate.inputs[1], y.slice(0, lo_w)));
        }
        GateKind::Slice { lo } => {
            let in_w = netlist.net_width(gate.inputs[0]);
            let mut refined = input(0);
            for i in 0..y.width() {
                if y.bit(i).is_known() && lo + i < in_w {
                    refined.set_bit(lo + i, y.bit(i));
                }
            }
            out.push((gate.inputs[0], refined));
        }
        GateKind::ZeroExt => {
            let in_w = netlist.net_width(gate.inputs[0]);
            out.push((gate.inputs[0], y.slice(0, in_w)));
        }
    }
}

/// Backward implication across a multiplier: possible only when enough is known.
fn backward_mul(y: &Bv3, a: &Bv3, b: &Bv3, gate: &Gate, out: &mut Proposals) {
    let width = y.width();
    if width > 64 {
        return;
    }
    // An odd product forces both operands odd.
    if y.bit(0) == Tv::One {
        out.push((gate.inputs[0], a.with_bit(0, Tv::One)));
        out.push((gate.inputs[1], b.with_bit(0, Tv::One)));
    }
    if let Some(yv) = y.to_bv().and_then(|v| v.to_u64()) {
        let ring = wlac_modsolve::Ring::new(width as u32);
        for (known, unknown_idx) in [(a, 1usize), (b, 0usize)] {
            if let Some(kv) = known.to_bv().and_then(|v| v.to_u64()) {
                if let Some(set) = wlac_modsolve::inverse_with_product(ring, kv, yv) {
                    if set.count() == 1 {
                        out.push((
                            gate.inputs[unknown_idx],
                            Bv3::from_bv(&Bv::from_u64(width, set.base())),
                        ));
                    }
                } else {
                    // No factorisation exists: force a conflict on the output.
                    out.push((gate.output, Bv3::from_bv(&Bv::from_u64(width, yv ^ 1))));
                }
            }
        }
    }
}

/// Event-driven fixed-point implication over a netlist.
#[derive(Debug)]
pub(crate) struct Propagator {
    queue: VecDeque<GateId>,
    queued: Vec<bool>,
}

impl Propagator {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        Propagator {
            queue: VecDeque::new(),
            queued: vec![false; netlist.gate_count()],
        }
    }

    /// Enqueues every gate (used for the initial implication pass).
    pub(crate) fn enqueue_all(&mut self, netlist: &Netlist) {
        for (id, _) in netlist.gates() {
            self.enqueue(id);
        }
    }

    fn enqueue(&mut self, gate: GateId) {
        if !self.queued[gate.index()] {
            self.queued[gate.index()] = true;
            self.queue.push_back(gate);
        }
    }

    /// Enqueues the driver and readers of a net whose value changed.
    pub(crate) fn enqueue_net(&mut self, netlist: &Netlist, net: NetId) {
        if let Some(driver) = netlist.driver(net) {
            self.enqueue(driver);
        }
        for reader in netlist.fanouts(net) {
            self.enqueue(*reader);
        }
    }

    /// Runs implication to a fixed point.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] encountered; the assignment then holds
    /// partially-propagated values and is expected to be backtracked by the
    /// caller.
    pub(crate) fn run(
        &mut self,
        netlist: &Netlist,
        asg: &mut Assignment,
        stats: &mut ImplicationStats,
    ) -> Result<(), Conflict> {
        while let Some(gate_id) = self.queue.pop_front() {
            self.queued[gate_id.index()] = false;
            let gate = netlist.gate(gate_id);
            stats.gate_evaluations += 1;
            for (net, cube) in imply_gate(netlist, gate, asg) {
                match asg.refine(net, &cube) {
                    Ok(true) => {
                        stats.refinements += 1;
                        self.enqueue_net(netlist, net);
                    }
                    Ok(false) => {}
                    Err(conflict) => {
                        self.queue.clear();
                        self.queued.iter_mut().for_each(|q| *q = false);
                        return Err(conflict);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    /// Runs implication to fixpoint on a small netlist after some seeds.
    fn settle(netlist: &Netlist, seeds: &[(NetId, Bv3)]) -> Result<Assignment, Conflict> {
        let mut asg = Assignment::new(netlist);
        let mut prop = Propagator::new(netlist);
        let mut stats = ImplicationStats::default();
        for (net, value) in seeds {
            asg.refine(*net, value)?;
            prop.enqueue_net(netlist, *net);
        }
        prop.enqueue_all(netlist);
        prop.run(netlist, &mut asg, &mut stats)?;
        Ok(asg)
    }

    #[test]
    fn and_gate_paper_example() {
        // Section 3.1: a = 10xx, b = 1x1x at a 4-bit AND with output x00x
        // forward-implies y = 100x and backward-implies a = 100x.
        let mut nl = Netlist::new("and");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.and2(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'b10xx")),
                (b, cube("4'b1x1x")),
                (y, cube("4'bx00x")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(y), &cube("4'b100x"));
        assert_eq!(asg.value(a), &cube("4'b100x"));
    }

    #[test]
    fn adder_fig3_example() {
        let mut nl = Netlist::new("adder");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let asg = settle(&nl, &[(y, cube("4'b0111")), (a, cube("4'b1x1x"))]).unwrap();
        assert_eq!(asg.value(b), &cube("4'b1x0x"));
    }

    #[test]
    fn comparator_fig4_example() {
        let mut nl = Netlist::new("cmp");
        let a = nl.input("in_a", 4);
        let b = nl.input("in_b", 4);
        let y = nl.gt(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'bx01x")),
                (b, cube("4'b1x0x")),
                (y, cube("1'b1")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(a), &cube("4'b101x"));
        assert_eq!(asg.value(b), &cube("4'b100x"));
    }

    #[test]
    fn mux_null_intersection_implies_select() {
        let mut nl = Netlist::new("mux");
        let sel = nl.input("sel", 1);
        let t = nl.input("t", 4);
        let e = nl.input("e", 4);
        let y = nl.mux(sel, t, e);
        // Output 5 is incompatible with the then-input forced to 0, so sel = 0.
        let asg = settle(&nl, &[(t, cube("4'b0000")), (y, cube("4'b0101"))]).unwrap();
        assert_eq!(asg.value(sel).to_tv(), Tv::Zero);
        assert_eq!(asg.value(e), &cube("4'b0101"));
    }

    #[test]
    fn register_buffer_propagates_both_ways() {
        let mut nl = Netlist::new("buf");
        let d = nl.input("d", 4);
        let q = nl.buf(d);
        let asg = settle(&nl, &[(q, cube("4'b1x00"))]).unwrap();
        assert_eq!(asg.value(d), &cube("4'b1x00"));
    }

    #[test]
    fn equality_requirement_intersects_operands() {
        let mut nl = Netlist::new("eq");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.eq(a, b);
        let asg = settle(
            &nl,
            &[
                (a, cube("4'b10xx")),
                (b, cube("4'bxx01")),
                (y, cube("1'b1")),
            ],
        )
        .unwrap();
        assert_eq!(asg.value(a), &cube("4'b1001"));
        assert_eq!(asg.value(b), &cube("4'b1001"));
    }

    #[test]
    fn equality_conflict_detected() {
        let mut nl = Netlist::new("eq2");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.eq(a, b);
        let result = settle(
            &nl,
            &[
                (a, cube("4'b0000")),
                (b, cube("4'b1111")),
                (y, cube("1'b1")),
            ],
        );
        assert!(result.is_err());
    }

    #[test]
    fn multiplier_inverse_implication() {
        let mut nl = Netlist::new("mul");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.mul(a, b);
        // a = 3 (odd, invertible), y = 9 ⇒ b = 3·inverse = 3^{-1}·9 = 11·9 = 3.
        let asg = settle(&nl, &[(a, cube("4'b0011")), (y, cube("4'b1001"))]).unwrap();
        assert_eq!(asg.value(b), &cube("4'b0011"));
    }

    #[test]
    fn shift_backward_with_known_amount() {
        let mut nl = Netlist::new("shl");
        let a = nl.input("a", 4);
        let amt = nl.constant(&Bv::from_u64(4, 1));
        let y = nl.shl(a, amt);
        let asg = settle(&nl, &[(y, cube("4'b011x"))]).unwrap();
        // Output bits 1..3 are input bits 0..2.
        assert_eq!(asg.value(a).bit(0), Tv::One);
        assert_eq!(asg.value(a).bit(1), Tv::One);
        assert_eq!(asg.value(a).bit(2), Tv::Zero);
    }

    #[test]
    fn concat_slice_zext_backward() {
        let mut nl = Netlist::new("structural");
        let hi = nl.input("hi", 2);
        let lo = nl.input("lo", 2);
        let cat = nl.concat(hi, lo);
        let sl = nl.slice(cat, 1, 2);
        let zx = nl.zext(sl, 5);
        let asg = settle(&nl, &[(zx, cube("5'b00011"))]).unwrap();
        assert_eq!(asg.value(sl), &cube("2'b11"));
        // slice bits 1..2 of cat are 1, i.e. lo bit1 = 1, hi bit0 = 1.
        assert_eq!(asg.value(lo).bit(1), Tv::One);
        assert_eq!(asg.value(hi).bit(0), Tv::One);
    }

    #[test]
    fn conflict_on_impossible_comparator() {
        let mut nl = Netlist::new("cmp_bad");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.lt(a, b);
        // a >= 12, b <= 3 and a < b is impossible.
        let result = settle(
            &nl,
            &[
                (a, cube("4'b11xx")),
                (b, cube("4'b00xx")),
                (y, cube("1'b1")),
            ],
        );
        assert!(result.is_err());
    }

    #[test]
    fn reduction_gates_backward() {
        let mut nl = Netlist::new("reduce");
        let a = nl.input("a", 3);
        let y = nl.reduce_or(a);
        let asg = settle(&nl, &[(y, cube("1'b0"))]).unwrap();
        assert_eq!(asg.value(a), &cube("3'b000"));

        let mut nl2 = Netlist::new("reduce_and");
        let a2 = nl2.input("a", 3);
        let y2 = nl2.reduce_and(a2);
        let asg2 = settle(&nl2, &[(y2, cube("1'b1"))]).unwrap();
        assert_eq!(asg2.value(a2), &cube("3'b111"));
    }
}
