//! Checker configuration.

use std::time::Duration;

/// Options controlling the word-level ATPG search and the arithmetic solver.
///
/// The defaults reproduce the configuration used for the paper's experiments:
/// bias-ordered decisions, the extended-state-transition-graph heuristic for
/// decision ordering, the modular arithmetic solver enabled, and induction
/// attempted before bounded search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerOptions {
    /// Maximum number of time-frames explored for bounded checks.
    pub max_frames: usize,
    /// Maximum number of backtracks before a check is aborted.
    pub backtrack_limit: usize,
    /// Maximum number of decisions before a check is aborted.
    pub decision_limit: usize,
    /// Maximum number of candidate decision points kept per justification
    /// round (the paper selects a fanout-based subset when the cut is large).
    pub candidate_limit: usize,
    /// Wall-clock limit for a single property check.
    pub time_limit: Duration,
    /// Attempt a 1-step induction proof before the bounded search
    /// (an extension beyond the paper, disabled to mimic it exactly).
    pub use_induction: bool,
    /// Order decisions by the legal-assignment bias (Definition 2);
    /// when disabled decisions are taken in structural order.
    pub use_bias_ordering: bool,
    /// Record conflicting abstract state transitions in the extended state
    /// transition graph and use them to order decisions.
    pub use_estg: bool,
    /// Use the modular arithmetic constraint solver for residual datapath
    /// constraints; when disabled the checker falls back to sampling.
    pub use_arithmetic_solver: bool,
    /// Number of closed-form solution samples instantiated per datapath
    /// feasibility check.
    pub solution_samples: usize,
    /// Candidate enumeration budget for nonlinear (multiplier) constraints.
    pub nonlinear_enumeration_limit: usize,
}

impl CheckerOptions {
    /// Creates the default configuration.
    pub fn new() -> Self {
        CheckerOptions {
            max_frames: 12,
            backtrack_limit: 200_000,
            decision_limit: 1_000_000,
            candidate_limit: 64,
            time_limit: Duration::from_secs(120),
            use_induction: true,
            use_bias_ordering: true,
            use_estg: true,
            use_arithmetic_solver: true,
            solution_samples: 16,
            nonlinear_enumeration_limit: 256,
        }
    }

    /// Configuration used when generating a witness (the bias value is taken
    /// first instead of its complement, as Section 3.2 prescribes for
    /// likely-to-exist objectives).
    pub fn for_witness(mut self) -> Self {
        self.use_induction = false;
        self
    }
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_paper_heuristics() {
        let opts = CheckerOptions::default();
        assert!(opts.use_bias_ordering);
        assert!(opts.use_arithmetic_solver);
        assert!(opts.use_estg);
        assert!(opts.max_frames >= 8);
        assert_eq!(opts, CheckerOptions::new());
    }

    #[test]
    fn witness_configuration_disables_induction() {
        let opts = CheckerOptions::new().for_witness();
        assert!(!opts.use_induction);
    }
}
