//! Checker configuration and cooperative cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wlac_faultinject::FaultPlan;
use wlac_telemetry::{ProgressHandle, RecorderHandle, SpanId, Tracer};

struct CancelInner {
    flag: AtomicBool,
    /// Hard wall-clock deadline; once passed, the token reads as cancelled
    /// forever (the flag is latched on first observation).
    deadline: Option<Instant>,
}

/// A cooperative cancellation token shared between a checker run and its
/// supervisor (e.g. the portfolio engine racing several strategies).
///
/// Cloning a token yields a handle to the **same** flag: cancelling any clone
/// cancels them all. The search loops poll [`CancelToken::is_cancelled`] and
/// abort with an `Unknown`/inconclusive outcome, so a race supervisor can
/// stop losing engines as soon as a winner produces a definitive answer.
///
/// A token may also carry a **deadline** ([`CancelToken::with_deadline`]):
/// once the wall clock passes it, every clone reads as cancelled — the
/// mechanism behind per-job time budgets, which guarantees a hung engine
/// frees its worker instead of occupying it forever.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// Creates a token that self-cancels once the wall clock passes
    /// `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Creates a token that self-cancels `budget` from now.
    pub fn deadline_in(budget: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone, or
    /// once the deadline (when one is set) has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later polls skip the clock read.
                self.inner.flag.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The deadline this token self-cancels at, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// `true` when this token carries a deadline that has already passed —
    /// distinguishes "ran out of budget" from "a supervisor cancelled us".
    pub fn deadline_expired(&self) -> bool {
        matches!(self.inner.deadline, Some(deadline) if Instant::now() >= deadline)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

/// Destination for structured span events emitted by a traced check.
///
/// Like [`CancelToken`], this is runtime wiring rather than configuration:
/// cloning a sink yields a handle to the **same** tracer ring, and a sink
/// with no tracer attached (the default) swallows every event. The search
/// only emits when [`CheckerOptions::trace`] is set, so the default path
/// pays nothing.
#[derive(Clone, Default)]
pub struct TraceSink {
    tracer: Option<Arc<Tracer>>,
}

impl TraceSink {
    /// A sink that discards every event (the default).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A sink recording into `tracer`.
    pub fn to(tracer: Arc<Tracer>) -> Self {
        TraceSink {
            tracer: Some(tracer),
        }
    }

    /// `true` when a tracer is attached.
    pub fn is_active(&self) -> bool {
        self.tracer.is_some()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Opens a span (no-op returning [`SpanId::ROOT`] when inactive).
    pub fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        match &self.tracer {
            Some(t) => t.span_start(name, parent),
            None => SpanId::ROOT,
        }
    }

    /// Closes a span (no-op when inactive).
    pub fn span_end(&self, span: SpanId, name: &'static str) {
        if let Some(t) = &self.tracer {
            t.span_end(span, name);
        }
    }

    /// Records an instantaneous event (no-op when inactive).
    pub fn event(&self, name: &'static str, parent: SpanId, value: u64) {
        if let Some(t) = &self.tracer {
            t.event(name, parent, value);
        }
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("active", &self.is_active())
            .finish()
    }
}

/// Options controlling the word-level ATPG search and the arithmetic solver.
///
/// The defaults reproduce the configuration used for the paper's experiments:
/// bias-ordered decisions, the extended-state-transition-graph heuristic for
/// decision ordering, the modular arithmetic solver enabled, and induction
/// attempted before bounded search.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Maximum number of time-frames explored for bounded checks.
    pub max_frames: usize,
    /// Maximum number of backtracks before a check is aborted.
    pub backtrack_limit: usize,
    /// Maximum number of decisions before a check is aborted.
    pub decision_limit: usize,
    /// Maximum number of candidate decision points kept per justification
    /// round (the paper selects a fanout-based subset when the cut is large).
    pub candidate_limit: usize,
    /// Wall-clock limit for a single property check.
    pub time_limit: Duration,
    /// Attempt a 1-step induction proof before the bounded search
    /// (an extension beyond the paper, disabled to mimic it exactly).
    pub use_induction: bool,
    /// Order decisions by the legal-assignment bias (Definition 2);
    /// when disabled decisions are taken in structural order.
    pub use_bias_ordering: bool,
    /// Record conflicting abstract state transitions in the extended state
    /// transition graph and use them to order decisions.
    pub use_estg: bool,
    /// Use the modular arithmetic constraint solver for residual datapath
    /// constraints; when disabled the checker falls back to sampling.
    pub use_arithmetic_solver: bool,
    /// Reuse cached island topology and pre-reduced solver templates across
    /// the decision search. When disabled every datapath resolution rebuilds
    /// its state from scratch — slower, but byte-for-byte the same
    /// transcription and solving code, which makes this the differential
    /// oracle for the incremental path.
    pub incremental_datapath: bool,
    /// Number of closed-form solution samples instantiated per datapath
    /// feasibility check.
    pub solution_samples: usize,
    /// Candidate enumeration budget for nonlinear (multiplier) constraints.
    pub nonlinear_enumeration_limit: usize,
    /// Cooperative cancellation token polled by the search loop. Ignored by
    /// equality comparisons: two configurations with different tokens are
    /// still "the same configuration".
    pub cancel: CancelToken,
    /// Record phase-attributed wall-clock time ([`crate::PhaseNanos`]) and
    /// emit per-decision span events into [`CheckerOptions::trace_sink`].
    /// Pure observability: verdicts and decision sequences are byte-identical
    /// with tracing on or off (enforced by a differential test), so — like
    /// `cancel` — this is ignored by equality comparisons.
    pub trace: bool,
    /// Span-event destination used when [`CheckerOptions::trace`] is set.
    /// Runtime wiring, ignored by equality comparisons.
    pub trace_sink: TraceSink,
    /// Deterministic fault-injection plan crossed by the search loop (the
    /// `engine_hang` site). Disabled by default and — like `cancel` — pure
    /// runtime wiring: a plan can only make an engine *fail to answer*,
    /// never change what a definitive answer says, so equality ignores it.
    pub faults: FaultPlan,
    /// Always-on flight-recorder handle: the search emits coarse lifecycle
    /// events (search entry/exit, frame-bound advances) into it, stamped
    /// with the job id the handle carries. Unlike [`CheckerOptions::trace`]
    /// there is no opt-in flag — the disabled default costs one branch per
    /// emission site, and the sites are per-frame, not per-decision, so the
    /// hot path stays untouched. Runtime wiring, ignored by equality
    /// comparisons.
    pub recorder: RecorderHandle,
    /// Live-progress handle: the search periodically publishes its effort
    /// counters (bound, decisions, conflicts, backtracks, restarts,
    /// implications, phase nanos) into the attached [`ProgressCell`] so
    /// observers can watch a long check in flight. Publication is lock-free
    /// and alloc-free (a seqlock of pre-allocated atomics), the disabled
    /// default costs one branch per throttled publication site, and a
    /// differential test proves probed and unprobed runs are byte-identical
    /// in verdicts and every counter. Runtime wiring, ignored by equality
    /// comparisons.
    pub progress: ProgressHandle,
}

// `cancel`, `trace` and `trace_sink` are runtime/observability wiring, not
// configuration: comparisons ignore them (tracing cannot change a verdict).
// The exhaustive destructuring (no `..`) makes adding a field without
// deciding its equality role a compile error.
impl PartialEq for CheckerOptions {
    fn eq(&self, other: &Self) -> bool {
        let CheckerOptions {
            max_frames,
            backtrack_limit,
            decision_limit,
            candidate_limit,
            time_limit,
            use_induction,
            use_bias_ordering,
            use_estg,
            use_arithmetic_solver,
            incremental_datapath,
            solution_samples,
            nonlinear_enumeration_limit,
            cancel: _,
            trace: _,
            trace_sink: _,
            faults: _,
            recorder: _,
            progress: _,
        } = self;
        *max_frames == other.max_frames
            && *backtrack_limit == other.backtrack_limit
            && *decision_limit == other.decision_limit
            && *candidate_limit == other.candidate_limit
            && *time_limit == other.time_limit
            && *use_induction == other.use_induction
            && *use_bias_ordering == other.use_bias_ordering
            && *use_estg == other.use_estg
            && *use_arithmetic_solver == other.use_arithmetic_solver
            && *incremental_datapath == other.incremental_datapath
            && *solution_samples == other.solution_samples
            && *nonlinear_enumeration_limit == other.nonlinear_enumeration_limit
    }
}

impl Eq for CheckerOptions {}

impl CheckerOptions {
    /// Creates the default configuration.
    pub fn new() -> Self {
        CheckerOptions {
            max_frames: 12,
            backtrack_limit: 200_000,
            decision_limit: 1_000_000,
            candidate_limit: 64,
            time_limit: Duration::from_secs(120),
            use_induction: true,
            use_bias_ordering: true,
            use_estg: true,
            use_arithmetic_solver: true,
            incremental_datapath: true,
            solution_samples: 16,
            nonlinear_enumeration_limit: 256,
            cancel: CancelToken::new(),
            trace: false,
            trace_sink: TraceSink::disabled(),
            faults: FaultPlan::disabled(),
            recorder: RecorderHandle::disabled(),
            progress: ProgressHandle::disabled(),
        }
    }

    /// Configuration used when generating a witness (the bias value is taken
    /// first instead of its complement, as Section 3.2 prescribes for
    /// likely-to-exist objectives).
    pub fn for_witness(mut self) -> Self {
        self.use_induction = false;
        self
    }

    /// Replaces the cancellation token, wiring this configuration into an
    /// externally controlled race or batch run.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables phase-attributed timing and routes span events to `sink`.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = true;
        self.trace_sink = sink;
        self
    }

    /// Arms a fault-injection plan (chaos testing; the default plan is
    /// disabled and free).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Routes always-on flight-recorder events (search entry/exit, bound
    /// advances) into `recorder`; the handle's job id stamps every event.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Routes live-progress probes (throttled effort-counter publications
    /// and bound advances) into `progress`.
    pub fn with_progress(mut self, progress: ProgressHandle) -> Self {
        self.progress = progress;
        self
    }
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_paper_heuristics() {
        let opts = CheckerOptions::default();
        assert!(opts.use_bias_ordering);
        assert!(opts.use_arithmetic_solver);
        assert!(opts.use_estg);
        assert!(opts.incremental_datapath);
        assert!(opts.max_frames >= 8);
        assert_eq!(opts, CheckerOptions::new());
    }

    #[test]
    fn witness_configuration_disables_induction() {
        let opts = CheckerOptions::new().for_witness();
        assert!(!opts.use_induction);
    }

    #[test]
    fn cancel_tokens_are_shared_between_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(format!("{token:?}").contains("true"));
    }

    #[test]
    fn trace_wiring_does_not_affect_option_equality() {
        use std::sync::Arc;
        let traced = CheckerOptions::new().with_trace(TraceSink::to(Arc::new(Tracer::new(16))));
        assert!(traced.trace);
        assert!(traced.trace_sink.is_active());
        assert_eq!(traced, CheckerOptions::new());
        assert!(!TraceSink::disabled().is_active());
        assert!(format!("{:?}", traced.trace_sink).contains("true"));
    }

    #[test]
    fn inactive_sink_swallows_events() {
        let sink = TraceSink::disabled();
        let span = sink.span_start("search", SpanId::ROOT);
        assert_eq!(span, SpanId::ROOT);
        sink.event("decision", span, 1);
        sink.span_end(span, "search");
        let tracer = Arc::new(Tracer::new(8));
        let sink = TraceSink::to(tracer.clone());
        let span = sink.span_start("search", SpanId::ROOT);
        sink.event("decision", span, 1);
        sink.span_end(span, "search");
        assert_eq!(tracer.events().len(), 3);
    }

    #[test]
    fn deadline_tokens_self_cancel() {
        let token = CancelToken::deadline_in(Duration::from_millis(10));
        assert!(!token.is_cancelled());
        assert!(!token.deadline_expired());
        assert!(token.deadline().is_some());
        std::thread::sleep(Duration::from_millis(20));
        let clone = token.clone();
        assert!(clone.is_cancelled(), "deadline passed on every clone");
        assert!(token.deadline_expired());
        // An explicit cancel is not a deadline expiry.
        let manual = CancelToken::new();
        manual.cancel();
        assert!(manual.is_cancelled());
        assert!(!manual.deadline_expired());
        assert!(manual.deadline().is_none());
    }

    #[test]
    fn fault_plan_does_not_affect_option_equality() {
        use wlac_faultinject::FaultSite;
        let faulted =
            CheckerOptions::new().with_faults(FaultPlan::new().fire_nth(FaultSite::EngineHang, 1));
        assert!(faulted.faults.is_armed());
        assert_eq!(faulted, CheckerOptions::new());
        assert!(!CheckerOptions::new().faults.is_armed());
    }

    #[test]
    fn progress_handle_does_not_affect_option_equality() {
        use std::sync::Arc;
        use wlac_telemetry::ProgressCell;
        let cell = Arc::new(ProgressCell::new());
        let probed = CheckerOptions::new().with_progress(ProgressHandle::to(cell));
        assert!(probed.progress.is_enabled());
        assert_eq!(probed, CheckerOptions::new());
        assert!(!CheckerOptions::new().progress.is_enabled());
    }

    #[test]
    fn cancel_token_does_not_affect_option_equality() {
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let a = CheckerOptions::new().with_cancel(cancelled);
        let b = CheckerOptions::new();
        assert_eq!(a, b);
        assert!(a.cancel.is_cancelled());
    }
}
