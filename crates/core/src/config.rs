//! Checker configuration and cooperative cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cooperative cancellation token shared between a checker run and its
/// supervisor (e.g. the portfolio engine racing several strategies).
///
/// Cloning a token yields a handle to the **same** flag: cancelling any clone
/// cancels them all. The search loops poll [`CancelToken::is_cancelled`] and
/// abort with an `Unknown`/inconclusive outcome, so a race supervisor can
/// stop losing engines as soon as a winner produces a definitive answer.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Options controlling the word-level ATPG search and the arithmetic solver.
///
/// The defaults reproduce the configuration used for the paper's experiments:
/// bias-ordered decisions, the extended-state-transition-graph heuristic for
/// decision ordering, the modular arithmetic solver enabled, and induction
/// attempted before bounded search.
#[derive(Debug, Clone)]
pub struct CheckerOptions {
    /// Maximum number of time-frames explored for bounded checks.
    pub max_frames: usize,
    /// Maximum number of backtracks before a check is aborted.
    pub backtrack_limit: usize,
    /// Maximum number of decisions before a check is aborted.
    pub decision_limit: usize,
    /// Maximum number of candidate decision points kept per justification
    /// round (the paper selects a fanout-based subset when the cut is large).
    pub candidate_limit: usize,
    /// Wall-clock limit for a single property check.
    pub time_limit: Duration,
    /// Attempt a 1-step induction proof before the bounded search
    /// (an extension beyond the paper, disabled to mimic it exactly).
    pub use_induction: bool,
    /// Order decisions by the legal-assignment bias (Definition 2);
    /// when disabled decisions are taken in structural order.
    pub use_bias_ordering: bool,
    /// Record conflicting abstract state transitions in the extended state
    /// transition graph and use them to order decisions.
    pub use_estg: bool,
    /// Use the modular arithmetic constraint solver for residual datapath
    /// constraints; when disabled the checker falls back to sampling.
    pub use_arithmetic_solver: bool,
    /// Reuse cached island topology and pre-reduced solver templates across
    /// the decision search. When disabled every datapath resolution rebuilds
    /// its state from scratch — slower, but byte-for-byte the same
    /// transcription and solving code, which makes this the differential
    /// oracle for the incremental path.
    pub incremental_datapath: bool,
    /// Number of closed-form solution samples instantiated per datapath
    /// feasibility check.
    pub solution_samples: usize,
    /// Candidate enumeration budget for nonlinear (multiplier) constraints.
    pub nonlinear_enumeration_limit: usize,
    /// Cooperative cancellation token polled by the search loop. Ignored by
    /// equality comparisons: two configurations with different tokens are
    /// still "the same configuration".
    pub cancel: CancelToken,
}

// `cancel` is runtime wiring, not configuration: comparisons ignore it.
// The exhaustive destructuring (no `..`) makes adding a field without
// deciding its equality role a compile error.
impl PartialEq for CheckerOptions {
    fn eq(&self, other: &Self) -> bool {
        let CheckerOptions {
            max_frames,
            backtrack_limit,
            decision_limit,
            candidate_limit,
            time_limit,
            use_induction,
            use_bias_ordering,
            use_estg,
            use_arithmetic_solver,
            incremental_datapath,
            solution_samples,
            nonlinear_enumeration_limit,
            cancel: _,
        } = self;
        *max_frames == other.max_frames
            && *backtrack_limit == other.backtrack_limit
            && *decision_limit == other.decision_limit
            && *candidate_limit == other.candidate_limit
            && *time_limit == other.time_limit
            && *use_induction == other.use_induction
            && *use_bias_ordering == other.use_bias_ordering
            && *use_estg == other.use_estg
            && *use_arithmetic_solver == other.use_arithmetic_solver
            && *incremental_datapath == other.incremental_datapath
            && *solution_samples == other.solution_samples
            && *nonlinear_enumeration_limit == other.nonlinear_enumeration_limit
    }
}

impl Eq for CheckerOptions {}

impl CheckerOptions {
    /// Creates the default configuration.
    pub fn new() -> Self {
        CheckerOptions {
            max_frames: 12,
            backtrack_limit: 200_000,
            decision_limit: 1_000_000,
            candidate_limit: 64,
            time_limit: Duration::from_secs(120),
            use_induction: true,
            use_bias_ordering: true,
            use_estg: true,
            use_arithmetic_solver: true,
            incremental_datapath: true,
            solution_samples: 16,
            nonlinear_enumeration_limit: 256,
            cancel: CancelToken::new(),
        }
    }

    /// Configuration used when generating a witness (the bias value is taken
    /// first instead of its complement, as Section 3.2 prescribes for
    /// likely-to-exist objectives).
    pub fn for_witness(mut self) -> Self {
        self.use_induction = false;
        self
    }

    /// Replaces the cancellation token, wiring this configuration into an
    /// externally controlled race or batch run.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_paper_heuristics() {
        let opts = CheckerOptions::default();
        assert!(opts.use_bias_ordering);
        assert!(opts.use_arithmetic_solver);
        assert!(opts.use_estg);
        assert!(opts.incremental_datapath);
        assert!(opts.max_frames >= 8);
        assert_eq!(opts, CheckerOptions::new());
    }

    #[test]
    fn witness_configuration_disables_induction() {
        let opts = CheckerOptions::new().for_witness();
        assert!(!opts.use_induction);
    }

    #[test]
    fn cancel_tokens_are_shared_between_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(format!("{token:?}").contains("true"));
    }

    #[test]
    fn cancel_token_does_not_affect_option_equality() {
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let a = CheckerOptions::new().with_cancel(cancelled);
        let b = CheckerOptions::new();
        assert_eq!(a, b);
        assert!(a.cancel.is_cancelled());
    }
}
