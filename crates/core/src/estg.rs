//! Extended state transition graph (ESTG) learning.
//!
//! The paper records abstract state transitions that lead to conflicts or to
//! hard-to-reach states in an extended state transition graph and reuses the
//! information in later ATPG runs to guide the search. This implementation
//! keeps a conflict score per decision assignment (a lightweight abstraction
//! of the same idea): assignments that repeatedly participate in conflicting
//! abstract transitions are tried later and with their historically less
//! conflicting value first. The structure only influences decision *ordering*
//! — it never prunes branches — so completeness of the search is unaffected.

use std::collections::HashMap;
use wlac_netlist::NetId;

/// Conflict-history store used to order decisions.
#[derive(Debug, Clone, Default)]
pub struct Estg {
    conflicts: HashMap<(NetId, bool), u64>,
    recorded: u64,
}

impl Estg {
    /// Creates an empty store.
    pub fn new() -> Self {
        Estg::default()
    }

    /// Records that assigning `value` to `net` participated in a conflicting
    /// (illegal) abstract transition.
    pub fn record_conflict(&mut self, net: NetId, value: bool) {
        *self.conflicts.entry((net, value)).or_insert(0) += 1;
        self.recorded += 1;
    }

    /// Accumulates `count` conflicts against one assignment in one step
    /// (saturating). Used to rebuild a store from its [`Estg::entries`]
    /// serialization; counts only shape decision ordering, so a wrong count
    /// can never make the search unsound.
    pub fn record_conflicts(&mut self, net: NetId, value: bool, count: u64) {
        let entry = self.conflicts.entry((net, value)).or_insert(0);
        *entry = entry.saturating_add(count);
        self.recorded = self.recorded.saturating_add(count);
    }

    /// Number of conflicts recorded against assigning `value` to `net`.
    pub fn conflict_count(&self, net: NetId, value: bool) -> u64 {
        self.conflicts.get(&(net, value)).copied().unwrap_or(0)
    }

    /// Total number of recorded conflicting transitions.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Ordering penalty for a candidate decision: decisions whose historically
    /// conflicting value would be tried first are penalised.
    pub fn penalty(&self, net: NetId, value: bool) -> f64 {
        self.conflict_count(net, value) as f64
    }

    /// Approximate number of bytes held by the store.
    pub fn memory_bytes(&self) -> usize {
        self.conflicts.len() * 32 + 32
    }

    /// Number of distinct `(net, value)` assignments with recorded conflicts.
    pub fn len(&self) -> usize {
        self.conflicts.len()
    }

    /// `true` when no conflicts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Iterates over the recorded conflict cubes as `((net, value), count)`.
    pub fn entries(&self) -> impl Iterator<Item = ((NetId, bool), u64)> + '_ {
        self.conflicts.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another store's conflict history into this one (used by the
    /// cross-property knowledge base to accumulate ATPG conflict cubes across
    /// runs on the same design). The store only ever influences decision
    /// *ordering*, so merging histories from different properties of the same
    /// design is always sound. Counts saturate instead of overflowing — at
    /// that magnitude they are pure ordering pressure anyway.
    pub fn merge(&mut self, other: &Estg) {
        for (key, count) in other.entries() {
            let entry = self.conflicts.entry(key).or_insert(0);
            *entry = entry.saturating_add(count);
        }
        self.recorded = self.recorded.saturating_add(other.recorded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_penalises() {
        let mut estg = Estg::new();
        let net = NetId::from_index(3);
        assert_eq!(estg.conflict_count(net, true), 0);
        estg.record_conflict(net, true);
        estg.record_conflict(net, true);
        estg.record_conflict(net, false);
        assert_eq!(estg.conflict_count(net, true), 2);
        assert_eq!(estg.conflict_count(net, false), 1);
        assert_eq!(estg.recorded(), 3);
        assert!(estg.penalty(net, true) > estg.penalty(net, false));
        assert!(estg.memory_bytes() > 0);
    }
}
