//! The branch-and-bound justification search (Fig. 2 of the paper).
//!
//! The search interleaves word-level implication, unjustified-gate detection,
//! decision-point selection on *control* signals only, bias-ordered decision
//! making, chronological backtracking over the word-level value trail, and —
//! once the control constraints are satisfied — the modular arithmetic
//! datapath resolution of [`crate::datapath`].
//!
//! All search state lives in a reusable [`SearchContext`]: the assignment and
//! its delta trail, the levelized propagator, the dense justification
//! buffers, the cached datapath islands and the decision stack. At steady
//! state (after the first search on a netlist has warmed the buffers) a whole
//! decision/backtrack cycle — including an unsatisfiable search from seeding
//! to exhaustion — performs **zero heap allocations** on control-only
//! circuits with nets up to 128 bits; `crates/core/tests/alloc_free.rs`
//! enforces this with a counting allocator.

use crate::assignment::Assignment;
use crate::config::CheckerOptions;
use crate::datapath::{DatapathContext, DatapathFacts, DatapathOutcome};
use crate::estg::Estg;
use crate::implication::Propagator;
use crate::justify::{assignment_bias, JustifyBuffers};
use crate::stats::CheckStats;
use std::time::Instant;
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{NetId, Netlist};
use wlac_telemetry::{RecorderKind, RecorderLayer, SpanId};

/// Outcome of one justification run over an unrolled circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A concrete assignment (value per expanded net) satisfying every
    /// requirement.
    Sat(Vec<Bv>),
    /// No assignment satisfies the requirements.
    Unsat,
    /// The search was aborted (limit reached) or ended with unresolved
    /// datapath obligations; no conclusion may be drawn.
    Inconclusive(&'static str),
}

/// The goal of the search, controlling the decision-value ordering
/// (Section 3.2: complement of the bias when proving, the bias itself when
/// hunting for a witness that likely exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchGoal {
    /// Proving an assertion: counter-examples are expected not to exist.
    Prove,
    /// Generating a witness expected to exist.
    Witness,
}

/// Wall-clock phase attribution for the search loop: every [`Self::tick`]
/// charges the time since the previous tick to one bucket of
/// [`crate::PhaseNanos`]. Construction with `enabled == false` yields a dead
/// clock — no monotonic-clock reads at all — so the untraced default path
/// keeps its exact cost and allocation profile.
struct PhaseClock {
    last: Option<Instant>,
}

impl PhaseClock {
    fn new(enabled: bool) -> Self {
        PhaseClock {
            last: enabled.then(Instant::now),
        }
    }

    #[inline]
    fn tick(&mut self, bucket: &mut u64) {
        if let Some(last) = self.last {
            let now = Instant::now();
            *bucket += now.duration_since(last).as_nanos() as u64;
            self.last = Some(now);
        }
    }
}

/// One pending decision on the search stack.
#[derive(Debug)]
struct Decision {
    net: NetId,
    /// Value to try if the current branch fails (None once both tried).
    alternative: Option<bool>,
    /// Value currently assigned.
    current: bool,
    /// Trail mark taken *before* the current value was assigned.
    mark: usize,
}

/// Reusable state of the justification engine for one (already unrolled)
/// combinational circuit.
///
/// Create it once per netlist and call [`SearchContext::search`] as many
/// times as needed — every internal buffer (assignment trail, propagator
/// buckets, justification frontiers, datapath island cache, decision stack)
/// is retained across runs, which is what makes repeated steady-state
/// searches allocation-free.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use wlac_atpg::{CheckStats, CheckerOptions, Estg, SearchContext, SearchGoal, SearchOutcome};
/// use wlac_netlist::Netlist;
///
/// // y = a & !a can never be 1.
/// let mut nl = Netlist::new("t");
/// let a = nl.input("a", 1);
/// let na = nl.not(a);
/// let y = nl.and2(a, na);
/// let requirements = vec![(y, "1'b1".parse().unwrap())];
///
/// let mut ctx = SearchContext::new(&nl);
/// let mut estg = Estg::new();
/// let mut stats = CheckStats::default();
/// let outcome = ctx.search(
///     &nl,
///     &CheckerOptions::default(),
///     SearchGoal::Prove,
///     &requirements,
///     &mut estg,
///     Instant::now() + Duration::from_secs(5),
///     &mut stats,
/// );
/// assert_eq!(outcome, SearchOutcome::Unsat);
/// ```
#[derive(Debug)]
pub struct SearchContext {
    asg: Assignment,
    propagator: Propagator,
    justify: JustifyBuffers,
    datapath: DatapathContext,
    stack: Vec<Decision>,
}

impl SearchContext {
    /// Creates a context sized for `netlist`. The context must only ever be
    /// used with this same netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let mut asg = Assignment::new(netlist);
        // Change events drive the incremental unjustified-gate worklist: the
        // per-decision scan touches only gates adjacent to nets that actually
        // changed since the last decision round.
        asg.enable_dirty_tracking();
        SearchContext {
            asg,
            propagator: Propagator::new(netlist),
            justify: JustifyBuffers::new(netlist),
            datapath: DatapathContext::new(netlist),
            stack: Vec::new(),
        }
    }

    /// Runs one justification search to completion (or until a limit is hit).
    ///
    /// `requirements` are the word-level value constraints to justify
    /// simultaneously; `estg` carries conflict history across searches of the
    /// same property (it is external so a checker can share it across
    /// unrolling bounds).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `netlist` is not the netlist this
    /// context was created for.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's engine inputs
    pub fn search(
        &mut self,
        netlist: &Netlist,
        options: &CheckerOptions,
        goal: SearchGoal,
        requirements: &[(NetId, Bv3)],
        estg: &mut Estg,
        deadline: Instant,
        stats: &mut CheckStats,
    ) -> SearchOutcome {
        self.search_with_facts(
            netlist,
            options,
            goal,
            requirements,
            estg,
            None,
            deadline,
            stats,
        )
    }

    /// Like [`SearchContext::search`], but consulting (and extending) a
    /// cross-run [`DatapathFacts`] store: island configurations already
    /// proven infeasible by an earlier search on the same expanded netlist
    /// are refuted without re-invoking the modular solver, and new
    /// infeasibility proofs are recorded for later runs.
    #[allow(clippy::too_many_arguments)]
    pub fn search_with_facts(
        &mut self,
        netlist: &Netlist,
        options: &CheckerOptions,
        goal: SearchGoal,
        requirements: &[(NetId, Bv3)],
        estg: &mut Estg,
        facts: Option<&mut DatapathFacts>,
        deadline: Instant,
        stats: &mut CheckStats,
    ) -> SearchOutcome {
        // The span wraps the whole run; per-decision events nest under it.
        // Both are inert unless tracing is on, keeping the default path
        // byte-identical in behaviour and allocation profile.
        let span = if options.trace {
            options.trace_sink.span_start("search", SpanId::ROOT)
        } else {
            SpanId::ROOT
        };
        options.recorder.record(
            RecorderLayer::Core,
            RecorderKind::Start,
            requirements.len() as u64,
            0,
        );
        let outcome = self.run_search(
            netlist,
            options,
            goal,
            requirements,
            estg,
            facts,
            deadline,
            stats,
            span,
        );
        if options.trace {
            options.trace_sink.span_end(span, "search");
        }
        options.recorder.record(
            RecorderLayer::Core,
            RecorderKind::End,
            stats.decisions,
            stats.backtracks,
        );
        // Final probe: even a search too short to cross the publication
        // throttle leaves its closing counters in the cell.
        options.progress.publish(
            stats.decisions,
            stats.conflicts,
            stats.backtracks,
            stats.implication.gate_evaluations,
            stats.phases.total(),
        );
        outcome
    }

    /// The search loop proper; `span` is the enclosing trace span (only used
    /// when `options.trace` is set).
    #[allow(clippy::too_many_arguments)]
    fn run_search(
        &mut self,
        netlist: &Netlist,
        options: &CheckerOptions,
        goal: SearchGoal,
        requirements: &[(NetId, Bv3)],
        estg: &mut Estg,
        mut facts: Option<&mut DatapathFacts>,
        deadline: Instant,
        stats: &mut CheckStats,
        span: SpanId,
    ) -> SearchOutcome {
        debug_assert_eq!(
            self.asg.len(),
            netlist.net_count(),
            "SearchContext reused with a different netlist"
        );
        // Reset reusable state through the delta trail (restores all-x).
        self.asg.backtrack_to(0);
        self.stack.clear();
        self.propagator.clear();
        let mut clock = PhaseClock::new(options.trace);

        // Initial assignments from the property, environment and initial
        // state, followed by a full implication pass.
        for (net, cube) in requirements {
            match self.asg.refine(*net, cube) {
                Ok(true) => self.propagator.enqueue_net(netlist, *net),
                Ok(false) => {}
                Err(_) => {
                    stats.conflicts += 1;
                    self.asg.backtrack_to(0);
                    return SearchOutcome::Unsat;
                }
            }
        }
        self.propagator.enqueue_all(netlist);
        let implication_ok = self
            .propagator
            .run(netlist, &mut self.asg, &mut stats.implication)
            .is_ok();
        clock.tick(&mut stats.phases.implication);
        // Account for the expanded netlist + assignment even when the run is
        // settled by this initial implication pass alone (e.g. an Unsat bound
        // never reaches the datapath handoff below).
        stats.peak_memory_bytes = stats
            .peak_memory_bytes
            .max(self.memory_estimate(netlist, estg));
        if !implication_ok {
            stats.conflicts += 1;
            self.asg.backtrack_to(0);
            return SearchOutcome::Unsat;
        }

        let mut inconclusive: Option<&'static str> = None;

        // Throttle for live-progress publication: one seqlock write every
        // PROBE_INTERVAL loop iterations keeps the probed hot path within
        // measurement noise of the unprobed one (and a disabled handle pays
        // only the `is_enabled` branch below).
        const PROBE_INTERVAL: u64 = 256;
        let mut probe_tick: u64 = 0;

        loop {
            // Chaos hook: an injected hang blocks here — like a real engine
            // stuck in a pathological search that still honours its token —
            // until cancellation (typically a job-budget deadline) releases
            // it, then falls through to the cancellation check below.
            if options.faults.is_armed() {
                options
                    .faults
                    .hang_until(wlac_faultinject::FaultSite::EngineHang, || {
                        options.cancel.is_cancelled()
                    });
            }
            if options.cancel.is_cancelled() {
                return SearchOutcome::Inconclusive("cancelled");
            }
            if Instant::now() > deadline {
                return SearchOutcome::Inconclusive("time limit exceeded");
            }
            if stats.backtracks > options.backtrack_limit as u64 {
                return SearchOutcome::Inconclusive("backtrack limit exceeded");
            }
            if stats.decisions > options.decision_limit as u64 {
                return SearchOutcome::Inconclusive("decision limit exceeded");
            }
            if options.progress.is_enabled() {
                probe_tick += 1;
                if probe_tick.is_multiple_of(PROBE_INTERVAL) {
                    options.progress.publish(
                        stats.decisions,
                        stats.conflicts,
                        stats.backtracks,
                        stats.implication.gate_evaluations,
                        stats.phases.total(),
                    );
                }
            }

            stats.justify_gates_rechecked +=
                self.justify.update_unjustified(netlist, &mut self.asg);
            let fully_justified = self.justify.unjustified.is_empty();
            if fully_justified {
                self.justify.candidates.clear();
            } else {
                self.justify
                    .compute_decision_cut(netlist, &self.asg, options.candidate_limit);
            }
            clock.tick(&mut stats.phases.justification);

            if fully_justified || self.justify.candidates.is_empty() {
                // Control constraints satisfied (or only datapath obligations
                // remain): hand over to the arithmetic constraint solver.
                stats.peak_memory_bytes = stats
                    .peak_memory_bytes
                    .max(self.memory_estimate(netlist, estg));
                let outcome = self.datapath.resolve(
                    netlist,
                    &mut self.asg,
                    &mut self.propagator,
                    &self.justify.unjustified,
                    requirements,
                    options,
                    facts.as_deref_mut(),
                    stats,
                );
                // A consistent resolution is the satisfiable leaf (model
                // concretization + validation); anything else is ordinary
                // datapath constraint solving.
                match &outcome {
                    DatapathOutcome::Consistent(_) => clock.tick(&mut stats.phases.sat_leaf),
                    _ => clock.tick(&mut stats.phases.datapath),
                }
                match outcome {
                    DatapathOutcome::Consistent(values) => {
                        if options.trace {
                            options.trace_sink.event("sat_leaf", span, stats.decisions);
                        }
                        return SearchOutcome::Sat(values);
                    }
                    DatapathOutcome::Infeasible => {
                        stats.conflicts += 1;
                        if options.trace {
                            options
                                .trace_sink
                                .event("datapath_infeasible", span, stats.decisions);
                        }
                    }
                    DatapathOutcome::Inconclusive => {
                        inconclusive.get_or_insert("unresolved datapath constraints");
                    }
                }
                let exhausted = !self.backtrack(netlist, estg, stats);
                clock.tick(&mut stats.phases.backtrack);
                if options.trace {
                    options
                        .trace_sink
                        .event("backtrack", span, self.stack.len() as u64);
                }
                if exhausted {
                    return match inconclusive {
                        Some(reason) => SearchOutcome::Inconclusive(reason),
                        None => SearchOutcome::Unsat,
                    };
                }
                continue;
            }

            // Pick the decision with the strongest bias (Definition 2).
            let (net, value) = self.pick_decision(netlist, options, goal, estg);
            stats.decisions += 1;
            clock.tick(&mut stats.phases.decision);
            if options.trace {
                options
                    .trace_sink
                    .event("decision", span, net.index() as u64);
            }
            let mark = self.asg.mark();
            if self.assign(netlist, net, value, stats) {
                clock.tick(&mut stats.phases.implication);
                self.stack.push(Decision {
                    net,
                    alternative: Some(!value),
                    current: value,
                    mark,
                });
            } else {
                clock.tick(&mut stats.phases.implication);
                // Immediate conflict: try the opposite value at this level.
                estg.record_conflict(net, value);
                self.asg.backtrack_to(mark);
                stats.conflicts += 1;
                stats.backtracks += 1;
                if options.trace {
                    options
                        .trace_sink
                        .event("conflict", span, net.index() as u64);
                }
                if self.assign(netlist, net, !value, stats) {
                    clock.tick(&mut stats.phases.implication);
                    self.stack.push(Decision {
                        net,
                        alternative: None,
                        current: !value,
                        mark,
                    });
                } else {
                    clock.tick(&mut stats.phases.implication);
                    estg.record_conflict(net, !value);
                    self.asg.backtrack_to(mark);
                    stats.conflicts += 1;
                    let exhausted = !self.backtrack(netlist, estg, stats);
                    clock.tick(&mut stats.phases.backtrack);
                    if options.trace {
                        options
                            .trace_sink
                            .event("backtrack", span, self.stack.len() as u64);
                    }
                    if exhausted {
                        return match inconclusive {
                            Some(reason) => SearchOutcome::Inconclusive(reason),
                            None => SearchOutcome::Unsat,
                        };
                    }
                }
            }
        }
    }

    /// Assigns a single-bit decision and runs implication; returns `false` on
    /// conflict (the assignment is *not* rolled back by this function).
    ///
    /// The propagator is part of the context so its buckets and scratch
    /// buffers stay warm across decisions.
    fn assign(
        &mut self,
        netlist: &Netlist,
        net: NetId,
        value: bool,
        stats: &mut CheckStats,
    ) -> bool {
        let cube = Bv3::from_tv(Tv::from_bool(value));
        match self.asg.refine(net, &cube) {
            Ok(_) => self.propagator.enqueue_net(netlist, net),
            Err(_) => return false,
        }
        self.propagator
            .run(netlist, &mut self.asg, &mut stats.implication)
            .is_ok()
    }

    /// Chronological backtracking: undo decisions until one still has an
    /// untried alternative that survives implication.
    fn backtrack(&mut self, netlist: &Netlist, estg: &mut Estg, stats: &mut CheckStats) -> bool {
        loop {
            let Some(mut top) = self.stack.pop() else {
                return false;
            };
            estg.record_conflict(top.net, top.current);
            self.asg.backtrack_to(top.mark);
            stats.backtracks += 1;
            if let Some(alt) = top.alternative.take() {
                if self.assign(netlist, top.net, alt, stats) {
                    self.stack.push(Decision {
                        net: top.net,
                        alternative: None,
                        current: alt,
                        mark: top.mark,
                    });
                    return true;
                }
                estg.record_conflict(top.net, alt);
                self.asg.backtrack_to(top.mark);
                stats.conflicts += 1;
            }
        }
    }

    /// Picks the next decision (net, value) among the candidates of the
    /// latest cut.
    fn pick_decision(
        &mut self,
        netlist: &Netlist,
        options: &CheckerOptions,
        goal: SearchGoal,
        estg: &Estg,
    ) -> (NetId, bool) {
        if !options.use_bias_ordering {
            let net = self.justify.candidates[0];
            return (net, false);
        }
        self.justify.compute_probabilities(netlist, &self.asg);
        let mut best: Option<(f64, NetId, bool)> = None;
        for net in &self.justify.candidates {
            let p1 = self.justify.probability(*net).unwrap_or(0.5);
            let (mut bias, bias_value) = assignment_bias(p1);
            if options.use_estg {
                // Prefer assignments with fewer recorded conflicts.
                bias -= estg.penalty(*net, bias_value).min(bias * 0.5);
            }
            if best.map(|(b, _, _)| bias > b).unwrap_or(true) {
                best = Some((bias, *net, bias_value));
            }
        }
        let (_, net, bias_value) = best.expect("non-empty candidate list");
        let value = match goal {
            // Proving: take the complement of the bias value first so that
            // conflicts (and thus pruning) happen early.
            SearchGoal::Prove => !bias_value,
            SearchGoal::Witness => bias_value,
        };
        (net, value)
    }

    /// Approximate live memory of the search data structures: the expanded
    /// netlist, the assignment with its delta trail, the ESTG, the
    /// justification buffers, the cached datapath islands and the
    /// propagator's worklist/scratch. Every component the search keeps live
    /// is counted — the paper's Table 2 memory column must not silently
    /// exclude the solver-side state.
    fn memory_estimate(&self, netlist: &Netlist, estg: &Estg) -> usize {
        let netlist_bytes = netlist.gate_count() * 96 + netlist.net_count() * 48;
        self.asg.peak_memory_bytes()
            + netlist_bytes
            + estg.memory_bytes()
            + self.justify.memory_bytes()
            + self.datapath.memory_bytes()
            + self.propagator.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn run(netlist: &Netlist, requirements: Vec<(NetId, Bv3)>, goal: SearchGoal) -> SearchOutcome {
        let options = CheckerOptions::default();
        let mut estg = Estg::new();
        let mut stats = CheckStats::default();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut ctx = SearchContext::new(netlist);
        ctx.search(
            netlist,
            &options,
            goal,
            &requirements,
            &mut estg,
            deadline,
            &mut stats,
        )
    }

    #[test]
    fn satisfiable_control_requirement() {
        // (a & b) | c must be 1: plenty of solutions.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let c = nl.input("c", 1);
        let ab = nl.and2(a, b);
        let y = nl.or2(ab, c);
        match run(&nl, vec![(y, cube("1'b1"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                let ab_v =
                    values[a.index()].to_u64().unwrap() & values[b.index()].to_u64().unwrap();
                let y_v = ab_v | values[c.index()].to_u64().unwrap();
                assert_eq!(y_v, 1);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_requirement_is_proved() {
        // y = a & !a can never be 1.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let na = nl.not(a);
        let y = nl.and2(a, na);
        assert_eq!(
            run(&nl, vec![(y, cube("1'b1"))], SearchGoal::Prove),
            SearchOutcome::Unsat
        );
    }

    #[test]
    fn comparator_controlled_mux() {
        // out = (d1 > d2) ? d1 : d2 ; require out = 0 and d1 = 5 ⇒ impossible
        // because the max of two values with d1 = 5 is at least 5.
        let mut nl = Netlist::new("t");
        let d1 = nl.input("d1", 4);
        let d2 = nl.input("d2", 4);
        let gt = nl.gt(d1, d2);
        let out = nl.mux(gt, d1, d2);
        let reqs = vec![(out, cube("4'b0000")), (d1, cube("4'b0101"))];
        assert_eq!(run(&nl, reqs, SearchGoal::Prove), SearchOutcome::Unsat);
    }

    #[test]
    fn comparator_controlled_mux_sat_case() {
        // Same circuit, require out = 7: satisfiable (e.g. d1 = 7 > d2).
        let mut nl = Netlist::new("t");
        let d1 = nl.input("d1", 4);
        let d2 = nl.input("d2", 4);
        let gt = nl.gt(d1, d2);
        let out = nl.mux(gt, d1, d2);
        match run(&nl, vec![(out, cube("4'b0111"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                let d1v = values[d1.index()].to_u64().unwrap();
                let d2v = values[d2.index()].to_u64().unwrap();
                let expect = if d1v > d2v { d1v } else { d2v };
                assert_eq!(expect, 7);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn datapath_requirement_through_adder() {
        // sel ? (a + b) : 0 must equal 9: forces sel = 1 and a + b = 9.
        let mut nl = Netlist::new("t");
        let sel = nl.input("sel", 1);
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let sum = nl.add(a, b);
        let zero = nl.constant(&Bv::zero(4));
        let out = nl.mux(sel, sum, zero);
        match run(&nl, vec![(out, cube("4'b1001"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                assert_eq!(values[sel.index()].to_u64(), Some(1));
                let av = values[a.index()].to_u64().unwrap();
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((av + bv) % 16, 9);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn doubled_adder_parity_unsat() {
        // out = a + a forced odd is unsatisfiable; detected by the modular
        // arithmetic solver rather than by Boolean search.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let out = nl.add(a, a);
        assert_eq!(
            run(&nl, vec![(out, cube("4'b0111"))], SearchGoal::Prove),
            SearchOutcome::Unsat
        );
    }

    #[test]
    fn conflicting_requirements_unsat_immediately() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let y = nl.buf(a);
        let reqs = vec![(y, cube("1'b1")), (a, cube("1'b0"))];
        assert_eq!(run(&nl, reqs, SearchGoal::Prove), SearchOutcome::Unsat);
    }

    #[test]
    fn context_reuse_across_searches_is_consistent() {
        // The same context must answer a SAT, an UNSAT and again the SAT
        // query identically when reused (buffers fully isolated per run).
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let y = nl.and2(a, b);
        let na = nl.not(a);
        let z = nl.and2(a, na);
        let mut ctx = SearchContext::new(&nl);
        let options = CheckerOptions::default();
        let mut estg = Estg::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        let sat_req = vec![(y, cube("1'b1"))];
        let unsat_req = vec![(z, cube("1'b1"))];
        for round in 0..3 {
            let mut stats = CheckStats::default();
            let outcome = ctx.search(
                &nl,
                &options,
                SearchGoal::Witness,
                &sat_req,
                &mut estg,
                deadline,
                &mut stats,
            );
            assert!(
                matches!(outcome, SearchOutcome::Sat(_)),
                "round {round}: {outcome:?}"
            );
            let mut stats = CheckStats::default();
            let outcome = ctx.search(
                &nl,
                &options,
                SearchGoal::Prove,
                &unsat_req,
                &mut estg,
                deadline,
                &mut stats,
            );
            assert_eq!(outcome, SearchOutcome::Unsat, "round {round}");
        }
    }
}
