//! The branch-and-bound justification search (Fig. 2 of the paper).
//!
//! The search interleaves word-level implication, unjustified-gate detection,
//! decision-point selection on *control* signals only, bias-ordered decision
//! making, chronological backtracking over the word-level value trail, and —
//! once the control constraints are satisfied — the modular arithmetic
//! datapath resolution of [`crate::datapath`].

use crate::assignment::Assignment;
use crate::config::CheckerOptions;
use crate::datapath::{resolve_datapath, DatapathOutcome};
use crate::estg::Estg;
use crate::implication::Propagator;
use crate::justify::{assignment_bias, decision_cut, legal_one_probabilities, unjustified_gates};
use crate::stats::CheckStats;
use std::time::Instant;
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{NetId, Netlist};

/// Outcome of one justification run over an unrolled circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SearchOutcome {
    /// A concrete assignment (value per expanded net) satisfying every
    /// requirement.
    Sat(Vec<Bv>),
    /// No assignment satisfies the requirements.
    Unsat,
    /// The search was aborted (limit reached) or ended with unresolved
    /// datapath obligations; no conclusion may be drawn.
    Inconclusive(String),
}

/// The goal of the search, controlling the decision-value ordering
/// (Section 3.2: complement of the bias when proving, the bias itself when
/// hunting for a witness that likely exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SearchGoal {
    /// Proving an assertion: counter-examples are expected not to exist.
    Prove,
    /// Generating a witness expected to exist.
    Witness,
}

/// One pending decision on the search stack.
#[derive(Debug)]
struct Decision {
    net: NetId,
    /// Value to try if the current branch fails (None once both tried).
    alternative: Option<bool>,
    /// Value currently assigned.
    current: bool,
    /// Trail mark taken *before* the current value was assigned.
    mark: usize,
}

/// The justification engine for one (already unrolled) combinational circuit.
pub(crate) struct SearchEngine<'a> {
    netlist: &'a Netlist,
    options: &'a CheckerOptions,
    goal: SearchGoal,
    requirements: Vec<(NetId, Bv3)>,
    estg: &'a mut Estg,
    deadline: Instant,
}

impl<'a> SearchEngine<'a> {
    pub(crate) fn new(
        netlist: &'a Netlist,
        options: &'a CheckerOptions,
        goal: SearchGoal,
        requirements: Vec<(NetId, Bv3)>,
        estg: &'a mut Estg,
        deadline: Instant,
    ) -> Self {
        SearchEngine {
            netlist,
            options,
            goal,
            requirements,
            estg,
            deadline,
        }
    }

    /// Runs the search to completion (or until a limit is hit).
    pub(crate) fn run(&mut self, stats: &mut CheckStats) -> SearchOutcome {
        let mut asg = Assignment::new(self.netlist);
        let mut propagator = Propagator::new(self.netlist);

        // Initial assignments from the property, environment and initial
        // state, followed by a full implication pass.
        for (net, cube) in &self.requirements {
            match asg.refine(*net, cube) {
                Ok(true) => propagator.enqueue_net(self.netlist, *net),
                Ok(false) => {}
                Err(_) => return SearchOutcome::Unsat,
            }
        }
        propagator.enqueue_all(self.netlist);
        let implication_ok = propagator
            .run(self.netlist, &mut asg, &mut stats.implication)
            .is_ok();
        // Account for the expanded netlist + assignment even when the run is
        // settled by this initial implication pass alone (e.g. an Unsat bound
        // never reaches the datapath handoff below).
        stats.peak_memory_bytes = stats.peak_memory_bytes.max(self.memory_estimate(&asg));
        if !implication_ok {
            return SearchOutcome::Unsat;
        }

        let mut stack: Vec<Decision> = Vec::new();
        let mut inconclusive: Option<String> = None;

        loop {
            if self.options.cancel.is_cancelled() {
                return SearchOutcome::Inconclusive("cancelled".into());
            }
            if Instant::now() > self.deadline {
                return SearchOutcome::Inconclusive("time limit exceeded".into());
            }
            if stats.backtracks > self.options.backtrack_limit as u64 {
                return SearchOutcome::Inconclusive("backtrack limit exceeded".into());
            }
            if stats.decisions > self.options.decision_limit as u64 {
                return SearchOutcome::Inconclusive("decision limit exceeded".into());
            }

            let unjustified = unjustified_gates(self.netlist, &asg);
            let candidates = if unjustified.is_empty() {
                Vec::new()
            } else {
                decision_cut(
                    self.netlist,
                    &asg,
                    &unjustified,
                    self.options.candidate_limit,
                )
            };

            if unjustified.is_empty() || candidates.is_empty() {
                // Control constraints satisfied (or only datapath obligations
                // remain): hand over to the arithmetic constraint solver.
                stats.peak_memory_bytes = stats.peak_memory_bytes.max(self.memory_estimate(&asg));
                match resolve_datapath(self.netlist, &asg, &self.requirements, self.options, stats)
                {
                    DatapathOutcome::Consistent(values) => return SearchOutcome::Sat(values),
                    DatapathOutcome::Infeasible => {}
                    DatapathOutcome::Inconclusive => {
                        inconclusive
                            .get_or_insert_with(|| "unresolved datapath constraints".into());
                    }
                }
                if !self.backtrack(&mut propagator, &mut stack, &mut asg, stats) {
                    return match inconclusive {
                        Some(reason) => SearchOutcome::Inconclusive(reason),
                        None => SearchOutcome::Unsat,
                    };
                }
                continue;
            }

            // Pick the decision with the strongest bias (Definition 2).
            let (net, value) = self.pick_decision(&asg, &unjustified, &candidates);
            stats.decisions += 1;
            let mark = asg.mark();
            if self.assign(&mut propagator, &mut asg, net, value, stats) {
                stack.push(Decision {
                    net,
                    alternative: Some(!value),
                    current: value,
                    mark,
                });
            } else {
                // Immediate conflict: try the opposite value at this level.
                self.estg.record_conflict(net, value);
                asg.backtrack_to(mark);
                stats.backtracks += 1;
                if self.assign(&mut propagator, &mut asg, net, !value, stats) {
                    stack.push(Decision {
                        net,
                        alternative: None,
                        current: !value,
                        mark,
                    });
                } else {
                    self.estg.record_conflict(net, !value);
                    asg.backtrack_to(mark);
                    if !self.backtrack(&mut propagator, &mut stack, &mut asg, stats) {
                        return match inconclusive {
                            Some(reason) => SearchOutcome::Inconclusive(reason),
                            None => SearchOutcome::Unsat,
                        };
                    }
                }
            }
        }
    }

    /// Assigns a single-bit decision and runs implication; returns `false` on
    /// conflict (the assignment is *not* rolled back by this function).
    ///
    /// The propagator is created once per search and reused here so its
    /// buckets and scratch buffers stay warm across decisions.
    fn assign(
        &mut self,
        propagator: &mut Propagator,
        asg: &mut Assignment,
        net: NetId,
        value: bool,
        stats: &mut CheckStats,
    ) -> bool {
        let cube = Bv3::from_tv(Tv::from_bool(value));
        match asg.refine(net, &cube) {
            Ok(_) => propagator.enqueue_net(self.netlist, net),
            Err(_) => return false,
        }
        propagator
            .run(self.netlist, asg, &mut stats.implication)
            .is_ok()
    }

    /// Chronological backtracking: undo decisions until one still has an
    /// untried alternative that survives implication.
    fn backtrack(
        &mut self,
        propagator: &mut Propagator,
        stack: &mut Vec<Decision>,
        asg: &mut Assignment,
        stats: &mut CheckStats,
    ) -> bool {
        loop {
            let Some(mut top) = stack.pop() else {
                return false;
            };
            self.estg.record_conflict(top.net, top.current);
            asg.backtrack_to(top.mark);
            stats.backtracks += 1;
            if let Some(alt) = top.alternative.take() {
                if self.assign(propagator, asg, top.net, alt, stats) {
                    stack.push(Decision {
                        net: top.net,
                        alternative: None,
                        current: alt,
                        mark: top.mark,
                    });
                    return true;
                }
                self.estg.record_conflict(top.net, alt);
                asg.backtrack_to(top.mark);
            }
        }
    }

    /// Picks the next decision (net, value) among the candidates.
    fn pick_decision(
        &self,
        asg: &Assignment,
        unjustified: &[wlac_netlist::GateId],
        candidates: &[NetId],
    ) -> (NetId, bool) {
        if !self.options.use_bias_ordering {
            let net = candidates[0];
            return (net, false);
        }
        let probabilities = legal_one_probabilities(self.netlist, asg, unjustified);
        let mut best: Option<(f64, NetId, bool)> = None;
        for net in candidates {
            let p1 = probabilities.get(net).copied().unwrap_or(0.5);
            let (mut bias, bias_value) = assignment_bias(p1);
            if self.options.use_estg {
                // Prefer assignments with fewer recorded conflicts.
                bias -= self.estg.penalty(*net, bias_value).min(bias * 0.5);
            }
            if best.map(|(b, _, _)| bias > b).unwrap_or(true) {
                best = Some((bias, *net, bias_value));
            }
        }
        let (_, net, bias_value) = best.expect("non-empty candidate list");
        let value = match self.goal {
            // Proving: take the complement of the bias value first so that
            // conflicts (and thus pruning) happen early.
            SearchGoal::Prove => !bias_value,
            SearchGoal::Witness => bias_value,
        };
        (net, value)
    }

    /// Approximate live memory of the search data structures.
    fn memory_estimate(&self, asg: &Assignment) -> usize {
        let netlist_bytes = self.netlist.gate_count() * 96 + self.netlist.net_count() * 48;
        asg.peak_memory_bytes() + netlist_bytes + self.estg.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn run(netlist: &Netlist, requirements: Vec<(NetId, Bv3)>, goal: SearchGoal) -> SearchOutcome {
        let options = CheckerOptions::default();
        let mut estg = Estg::new();
        let mut stats = CheckStats::default();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut engine =
            SearchEngine::new(netlist, &options, goal, requirements, &mut estg, deadline);
        engine.run(&mut stats)
    }

    #[test]
    fn satisfiable_control_requirement() {
        // (a & b) | c must be 1: plenty of solutions.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let c = nl.input("c", 1);
        let ab = nl.and2(a, b);
        let y = nl.or2(ab, c);
        match run(&nl, vec![(y, cube("1'b1"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                let ab_v =
                    values[a.index()].to_u64().unwrap() & values[b.index()].to_u64().unwrap();
                let y_v = ab_v | values[c.index()].to_u64().unwrap();
                assert_eq!(y_v, 1);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_requirement_is_proved() {
        // y = a & !a can never be 1.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let na = nl.not(a);
        let y = nl.and2(a, na);
        assert_eq!(
            run(&nl, vec![(y, cube("1'b1"))], SearchGoal::Prove),
            SearchOutcome::Unsat
        );
    }

    #[test]
    fn comparator_controlled_mux() {
        // out = (d1 > d2) ? d1 : d2 ; require out = 0 and d1 = 5 ⇒ impossible
        // because the max of two values with d1 = 5 is at least 5.
        let mut nl = Netlist::new("t");
        let d1 = nl.input("d1", 4);
        let d2 = nl.input("d2", 4);
        let gt = nl.gt(d1, d2);
        let out = nl.mux(gt, d1, d2);
        let reqs = vec![(out, cube("4'b0000")), (d1, cube("4'b0101"))];
        assert_eq!(run(&nl, reqs, SearchGoal::Prove), SearchOutcome::Unsat);
    }

    #[test]
    fn comparator_controlled_mux_sat_case() {
        // Same circuit, require out = 7: satisfiable (e.g. d1 = 7 > d2).
        let mut nl = Netlist::new("t");
        let d1 = nl.input("d1", 4);
        let d2 = nl.input("d2", 4);
        let gt = nl.gt(d1, d2);
        let out = nl.mux(gt, d1, d2);
        match run(&nl, vec![(out, cube("4'b0111"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                let d1v = values[d1.index()].to_u64().unwrap();
                let d2v = values[d2.index()].to_u64().unwrap();
                let expect = if d1v > d2v { d1v } else { d2v };
                assert_eq!(expect, 7);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn datapath_requirement_through_adder() {
        // sel ? (a + b) : 0 must equal 9: forces sel = 1 and a + b = 9.
        let mut nl = Netlist::new("t");
        let sel = nl.input("sel", 1);
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let sum = nl.add(a, b);
        let zero = nl.constant(&Bv::zero(4));
        let out = nl.mux(sel, sum, zero);
        match run(&nl, vec![(out, cube("4'b1001"))], SearchGoal::Witness) {
            SearchOutcome::Sat(values) => {
                assert_eq!(values[sel.index()].to_u64(), Some(1));
                let av = values[a.index()].to_u64().unwrap();
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((av + bv) % 16, 9);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn doubled_adder_parity_unsat() {
        // out = a + a forced odd is unsatisfiable; detected by the modular
        // arithmetic solver rather than by Boolean search.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let out = nl.add(a, a);
        assert_eq!(
            run(&nl, vec![(out, cube("4'b0111"))], SearchGoal::Prove),
            SearchOutcome::Unsat
        );
    }

    #[test]
    fn conflicting_requirements_unsat_immediately() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let y = nl.buf(a);
        let reqs = vec![(y, cube("1'b1")), (a, cube("1'b0"))];
        assert_eq!(run(&nl, reqs, SearchGoal::Prove), SearchOutcome::Unsat);
    }
}
