//! # wlac-atpg — word-level ATPG + modular arithmetic assertion checking
//!
//! This crate is the core of WLAC, a reproduction of Huang & Cheng,
//! *"Assertion Checking by Combined Word-level ATPG and Modular Arithmetic
//! Constraint-Solving Techniques"* (DAC 2000).
//!
//! Given an RTL design as a word-level netlist ([`wlac_netlist::Netlist`]),
//! an assertion is compiled to a single-bit monitor ([`Property`], helpers in
//! [`property::monitor`]) and checked by [`AssertionChecker`]:
//!
//! 1. the design is expanded over time-frames,
//! 2. the inverted assertion, the environment constraints and the initial
//!    state become word-level value requirements,
//! 3. word-level implication and a branch-and-bound justification restricted
//!    to control signals solve the Boolean part of the constraints,
//! 4. residual datapath constraints go to the modular arithmetic solver
//!    ([`wlac_modsolve`]),
//! 5. a satisfying assignment is turned into a concrete [`Trace`] and
//!    validated by simulation; exhaustion of the search space proves the
//!    assertion (up to the bound, or outright via 1-step induction).
//!
//! # Examples
//!
//! ```
//! use wlac_atpg::{AssertionChecker, CheckResult, Property, Verification};
//! use wlac_bv::Bv;
//! use wlac_netlist::Netlist;
//!
//! // A 4-bit counter that wraps from 9 back to 0; assert it never reaches 12.
//! let mut nl = Netlist::new("dec_counter");
//! let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
//! let one = nl.constant(&Bv::from_u64(4, 1));
//! let plus = nl.add(q, one);
//! let nine = nl.constant(&Bv::from_u64(4, 9));
//! let wrap = nl.eq(q, nine);
//! let zero = nl.constant(&Bv::zero(4));
//! let next = nl.mux(wrap, zero, plus);
//! nl.connect_dff_data(ff, next);
//! let twelve = nl.constant(&Bv::from_u64(4, 12));
//! let ok = nl.ne(q, twelve);
//!
//! let property = Property::always(&nl, "never_12", ok);
//! let report = AssertionChecker::with_defaults().check(&Verification::new(nl, property));
//! assert!(report.result.is_pass());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod checker;
mod config;
mod datapath;
mod estg;
mod implication;
mod justify;
mod knowledge;
mod search;
mod stats;
mod trace;

pub mod property;

pub use assignment::Conflict;
pub use checker::{AssertionChecker, CheckReport, CheckResult};
pub use config::{CancelToken, CheckerOptions, TraceSink};
pub use datapath::DatapathFacts;
pub use estg::Estg;
pub use implication::{ImplicationEngine, ImplicationStats};
pub use knowledge::SearchKnowledge;
pub use property::{Property, PropertyKind, Verification};
pub use search::{SearchContext, SearchGoal, SearchOutcome};
pub use stats::{CheckStats, PhaseNanos};
pub use trace::Trace;
pub use wlac_faultinject::{FaultPlan, FaultSite};
