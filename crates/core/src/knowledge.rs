//! Reusable ATPG search knowledge.
//!
//! Everything the word-level ATPG engine learns about a *design* — as opposed
//! to one particular property — is bundled in [`SearchKnowledge`] so a
//! long-lived verification session can carry it across property checks:
//!
//! * the [`Estg`] conflict-cube history (which decision assignments keep
//!   participating in illegal abstract transitions) only influences decision
//!   *ordering*, so sharing it across properties is unconditionally sound and
//!   steers later searches away from historically dead branches;
//! * the [`DatapathFacts`] store memoises modular-solver infeasibility proofs
//!   keyed by the full solve input, letting warm-started searches refute
//!   repeated island configurations without re-running the solver.
//!
//! Both stores are keyed by nets of the deterministic frame-major time-frame
//! expansion, so they are only meaningful for checks against a structurally
//! identical netlist — a knowledge base must be bound to a design identity
//! (e.g. a structural hash) by its owner and rejected on mismatch.

use crate::datapath::DatapathFacts;
use crate::estg::Estg;

/// Design-level knowledge accumulated by (and seedable into) the ATPG
/// checker. See the module docs for the soundness contract of each part.
#[derive(Debug, Clone, Default)]
pub struct SearchKnowledge {
    /// Conflict-cube history guiding decision ordering.
    pub estg: Estg,
    /// Memoised modular-solver infeasibility proofs.
    pub datapath_facts: DatapathFacts,
}

impl SearchKnowledge {
    /// Creates an empty knowledge bundle.
    pub fn new() -> Self {
        SearchKnowledge::default()
    }

    /// Merges another bundle (e.g. the knowledge harvested by a finished
    /// check) into this one.
    pub fn merge(&mut self, other: &SearchKnowledge) {
        self.estg.merge(&other.estg);
        self.datapath_facts.merge(&other.datapath_facts);
    }

    /// Approximate number of bytes held by the bundle.
    pub fn memory_bytes(&self) -> usize {
        self.estg.memory_bytes() + self.datapath_facts.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_netlist::NetId;

    #[test]
    fn merge_accumulates_both_stores() {
        let mut a = SearchKnowledge::new();
        let mut b = SearchKnowledge::new();
        b.estg.record_conflict(NetId::from_index(2), true);
        b.estg.record_conflict(NetId::from_index(2), true);
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.estg.conflict_count(NetId::from_index(2), true), 4);
        assert_eq!(a.estg.recorded(), 4);
        assert!(a.datapath_facts.is_empty());
        assert!(a.memory_bytes() > 0);
    }
}
