//! The assertion checking framework (Fig. 1 of the paper).
//!
//! [`AssertionChecker::check`] drives the whole flow: the sequential design
//! is expanded over time-frames, the assertion is inverted into a
//! counter-example-generation problem whose value requirements seed the
//! word-level ATPG engine, and the combined ATPG + modular-arithmetic search
//! of [`crate::search`] either produces a counter-example/witness trace or
//! proves that none exists within the bound. A one-step induction check (an
//! extension over the paper) can upgrade a bounded result into a full proof.

use crate::config::CheckerOptions;
use crate::datapath::DatapathFacts;
use crate::estg::Estg;
use crate::knowledge::SearchKnowledge;
use crate::property::{PropertyKind, Verification};
use crate::search::{SearchContext, SearchGoal, SearchOutcome};
use crate::stats::CheckStats;
use crate::trace::Trace;
use std::time::Instant;
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{NetId, Unrolling};

/// Outcome of checking one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The assertion holds in every reachable state (proved by induction on
    /// top of the bounded search).
    Proved,
    /// No counter-example exists within the explored bound.
    HoldsUpToBound {
        /// Number of time-frames exhaustively explored.
        frames: usize,
    },
    /// The assertion fails; a validated counter-example is attached.
    CounterExample {
        /// Concrete failing execution.
        trace: Trace,
    },
    /// A witness satisfying the `Eventually` objective was found.
    WitnessFound {
        /// Concrete satisfying execution.
        trace: Trace,
    },
    /// No witness exists within the explored bound.
    WitnessNotFound {
        /// Number of time-frames exhaustively explored.
        frames: usize,
    },
    /// The check was aborted before reaching a conclusion.
    Unknown {
        /// Human-readable reason (time limit, backtrack limit, unresolved
        /// datapath constraints, failed validation).
        reason: String,
    },
}

impl CheckResult {
    /// `true` when the result certifies the assertion (proved or holds up to
    /// the bound) — the "assertion passes" outcomes of the paper's Table 2.
    pub fn is_pass(&self) -> bool {
        matches!(
            self,
            CheckResult::Proved | CheckResult::HoldsUpToBound { .. }
        )
    }

    /// `true` when a concrete trace (counter-example or witness) was produced.
    pub fn has_trace(&self) -> bool {
        matches!(
            self,
            CheckResult::CounterExample { .. } | CheckResult::WitnessFound { .. }
        )
    }
}

/// Result plus effort statistics for one property check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Property name (e.g. `p7`).
    pub property: String,
    /// Outcome of the check.
    pub result: CheckResult,
    /// Search statistics (CPU time, memory estimate, decisions, ...).
    pub stats: CheckStats,
}

/// The combined word-level ATPG + modular arithmetic assertion checker.
#[derive(Debug, Clone, Default)]
pub struct AssertionChecker {
    options: CheckerOptions,
}

impl AssertionChecker {
    /// Creates a checker with the given options.
    pub fn new(options: CheckerOptions) -> Self {
        AssertionChecker { options }
    }

    /// Creates a checker with default options.
    pub fn with_defaults() -> Self {
        AssertionChecker::new(CheckerOptions::default())
    }

    /// The active options.
    pub fn options(&self) -> &CheckerOptions {
        &self.options
    }

    /// Checks one property of a design.
    ///
    /// Runs cold: no cross-property knowledge is consulted or recorded (use
    /// [`AssertionChecker::check_learned`] for warm-started checks). Keeping
    /// the cold path free of the fact-memo bookkeeping preserves its exact
    /// allocation profile and makes it the oracle the learning-soundness
    /// differential tests compare against.
    pub fn check(&self, verification: &Verification) -> CheckReport {
        let mut estg = Estg::new();
        self.check_inner(verification, &mut estg, None)
    }

    /// Checks one property, seeded with (and feeding back into) a
    /// cross-property [`SearchKnowledge`] bundle for the same design.
    ///
    /// The ESTG conflict cubes bias decision ordering towards historically
    /// conflict-free assignments and the datapath facts short-circuit
    /// already-refuted island solves; neither can change a verdict, only the
    /// effort to reach it (the learning-soundness differential tests in
    /// `tests/service.rs` enforce this). On return the bundle additionally
    /// holds everything this run learned.
    ///
    /// The caller is responsible for only ever passing knowledge gathered on
    /// a **structurally identical** netlist — bind bundles to a design hash
    /// and reject mismatches.
    pub fn check_learned(
        &self,
        verification: &Verification,
        knowledge: &mut SearchKnowledge,
    ) -> CheckReport {
        let SearchKnowledge {
            estg,
            datapath_facts,
        } = knowledge;
        self.check_inner(verification, estg, Some(datapath_facts))
    }

    fn check_inner(
        &self,
        verification: &Verification,
        estg: &mut Estg,
        facts: Option<&mut DatapathFacts>,
    ) -> CheckReport {
        let start = Instant::now();
        let deadline = start + self.options.time_limit;
        let mut stats = CheckStats::default();
        let result = match verification.property.kind {
            PropertyKind::Always => {
                self.check_always(verification, estg, facts, deadline, &mut stats)
            }
            PropertyKind::Eventually => {
                self.check_eventually(verification, estg, facts, deadline, &mut stats)
            }
        };
        stats.elapsed = start.elapsed();
        if self.options.trace {
            // The search loop attributed its own time; everything else this
            // check did (unrolling, requirement seeding, trace extraction and
            // replay validation) is the remainder, charged to `other` so the
            // phase breakdown partitions `elapsed`.
            let attributed = stats.phases.total() - stats.phases.other;
            stats.phases.other = (stats.elapsed.as_nanos() as u64).saturating_sub(attributed);
        }
        CheckReport {
            property: verification.property.name.clone(),
            result,
            stats,
        }
    }

    fn check_always(
        &self,
        verification: &Verification,
        estg: &mut Estg,
        mut facts: Option<&mut DatapathFacts>,
        deadline: Instant,
        stats: &mut CheckStats,
    ) -> CheckResult {
        // One unrolling grows monotonically across bounds: deepening by one
        // frame appends to the expanded circuit instead of rebuilding it.
        let mut unrolling = Unrolling::new(&verification.netlist, 1);
        for frames in 1..=self.options.max_frames {
            if self.options.cancel.is_cancelled() {
                return CheckResult::Unknown {
                    reason: "cancelled".into(),
                };
            }
            stats.frames_explored = frames;
            unrolling.extend_to(&verification.netlist, frames);
            if self.options.trace {
                self.options
                    .trace_sink
                    .event("bound", wlac_telemetry::SpanId::ROOT, frames as u64);
            }
            self.options.recorder.record(
                wlac_telemetry::RecorderLayer::Core,
                wlac_telemetry::RecorderKind::Bound,
                frames as u64,
                self.options.max_frames as u64,
            );
            self.options.progress.advance_bound(frames as u64);
            let outcome = self.solve_bound(
                verification,
                &unrolling,
                frames,
                true,
                false,
                SearchGoal::Prove,
                estg,
                facts.as_deref_mut(),
                deadline,
                stats,
            );
            match outcome {
                SearchOutcome::Sat(values) => {
                    let trace = self.extract_trace(verification, &unrolling, &values);
                    return match trace
                        .replay_monitor(&verification.netlist, verification.property.monitor)
                    {
                        Ok(monitor) if monitor.last() == Some(&false) => {
                            CheckResult::CounterExample { trace }
                        }
                        Ok(_) => CheckResult::Unknown {
                            reason: "counter-example failed replay validation".into(),
                        },
                        Err(e) => CheckResult::Unknown {
                            reason: format!("counter-example replay error: {e}"),
                        },
                    };
                }
                SearchOutcome::Unsat => {}
                SearchOutcome::Inconclusive(reason) => {
                    return CheckResult::Unknown {
                        reason: reason.into(),
                    };
                }
            }
            // After establishing the base case, try to close the proof with a
            // one-step induction: no state satisfying the monitor may have a
            // successor violating it.
            if frames == 1 && self.options.use_induction {
                unrolling.extend_to(&verification.netlist, 2);
                let outcome = self.solve_bound(
                    verification,
                    &unrolling,
                    2,
                    true,
                    true,
                    SearchGoal::Prove,
                    estg,
                    facts.as_deref_mut(),
                    deadline,
                    stats,
                );
                if outcome == SearchOutcome::Unsat {
                    return CheckResult::Proved;
                }
            }
        }
        CheckResult::HoldsUpToBound {
            frames: self.options.max_frames,
        }
    }

    fn check_eventually(
        &self,
        verification: &Verification,
        estg: &mut Estg,
        mut facts: Option<&mut DatapathFacts>,
        deadline: Instant,
        stats: &mut CheckStats,
    ) -> CheckResult {
        let mut unrolling = Unrolling::new(&verification.netlist, 1);
        for frames in 1..=self.options.max_frames {
            if self.options.cancel.is_cancelled() {
                return CheckResult::Unknown {
                    reason: "cancelled".into(),
                };
            }
            stats.frames_explored = frames;
            unrolling.extend_to(&verification.netlist, frames);
            if self.options.trace {
                self.options
                    .trace_sink
                    .event("bound", wlac_telemetry::SpanId::ROOT, frames as u64);
            }
            self.options.recorder.record(
                wlac_telemetry::RecorderLayer::Core,
                wlac_telemetry::RecorderKind::Bound,
                frames as u64,
                self.options.max_frames as u64,
            );
            self.options.progress.advance_bound(frames as u64);
            let outcome = self.solve_bound(
                verification,
                &unrolling,
                frames,
                false,
                false,
                SearchGoal::Witness,
                estg,
                facts.as_deref_mut(),
                deadline,
                stats,
            );
            match outcome {
                SearchOutcome::Sat(values) => {
                    let trace = self.extract_trace(verification, &unrolling, &values);
                    return match trace
                        .replay_monitor(&verification.netlist, verification.property.monitor)
                    {
                        Ok(monitor) if monitor.last() == Some(&true) => {
                            CheckResult::WitnessFound { trace }
                        }
                        Ok(_) => CheckResult::Unknown {
                            reason: "witness failed replay validation".into(),
                        },
                        Err(e) => CheckResult::Unknown {
                            reason: format!("witness replay error: {e}"),
                        },
                    };
                }
                SearchOutcome::Unsat => {}
                SearchOutcome::Inconclusive(reason) => {
                    return CheckResult::Unknown {
                        reason: reason.into(),
                    };
                }
            }
        }
        CheckResult::WitnessNotFound {
            frames: self.options.max_frames,
        }
    }

    /// Seeds the requirements over `frames` time-frames of the (already
    /// extended) unrolling and runs the justification search.
    ///
    /// `violation` selects the monitor value required at the last frame
    /// (`true` ⇒ require 0 for a counter-example, `false` ⇒ require 1 for a
    /// witness). `induction` drops the initial-state constraints and instead
    /// requires the monitor to hold at every frame but the last.
    #[allow(clippy::too_many_arguments)]
    fn solve_bound(
        &self,
        verification: &Verification,
        unrolling: &Unrolling,
        frames: usize,
        violation: bool,
        induction: bool,
        goal: SearchGoal,
        estg: &mut Estg,
        facts: Option<&mut DatapathFacts>,
        deadline: Instant,
        stats: &mut CheckStats,
    ) -> SearchOutcome {
        debug_assert_eq!(unrolling.frames(), frames, "bound/unrolling mismatch");
        let expanded = unrolling.circuit();
        let mut requirements: Vec<(NetId, Bv3)> = Vec::new();
        let one = Bv3::from_tv(Tv::One);
        let zero = Bv3::from_tv(Tv::Zero);

        if induction {
            // Assume the monitor in every frame but the last.
            for frame in 0..frames - 1 {
                requirements.push((
                    unrolling.net(frame, verification.property.monitor),
                    one.clone(),
                ));
            }
        } else {
            // Constrain the initial state to the declared reset values.
            for init in unrolling.initial_states() {
                if let Some(value) = &init.init {
                    requirements.push((init.net, Bv3::from_bv(value)));
                }
            }
        }
        // Environment constraints hold in every frame.
        for env in &verification.environment {
            for frame in 0..frames {
                requirements.push((unrolling.net(frame, *env), one.clone()));
            }
        }
        // The inverted assertion: require a violation (or the witness value)
        // in the last frame.
        let target = if violation { zero } else { one };
        requirements.push((
            unrolling.net(frames - 1, verification.property.monitor),
            target,
        ));

        let mut context = SearchContext::new(expanded);
        context.search_with_facts(
            expanded,
            &self.options,
            goal,
            &requirements,
            estg,
            facts,
            deadline,
            stats,
        )
    }

    /// Converts a satisfying assignment of the expanded circuit into a trace
    /// over the original design.
    fn extract_trace(
        &self,
        verification: &Verification,
        unrolling: &Unrolling,
        values: &[Bv],
    ) -> Trace {
        let netlist = &verification.netlist;
        let initial_state = unrolling
            .initial_states()
            .iter()
            .map(|init| {
                let q = netlist.gate(init.flip_flop).output;
                (q, values[init.net.index()].clone())
            })
            .collect();
        let inputs = (0..unrolling.frames())
            .map(|frame| {
                netlist
                    .inputs()
                    .iter()
                    .map(|pi| {
                        let expanded = unrolling.net(frame, *pi);
                        (*pi, values[expanded.index()].clone())
                    })
                    .collect()
            })
            .collect();
        Trace {
            initial_state,
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::{monitor, Property};
    use wlac_netlist::Netlist;

    /// A 4-bit counter that wraps at `limit` (q < limit is an invariant when
    /// the wrap value is below the limit).
    fn bounded_counter(limit: u64, wrap_at: u64) -> (Netlist, NetId) {
        let mut nl = Netlist::new("bounded_counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let plus = nl.add(q, one);
        let wrap = nl.constant(&Bv::from_u64(4, wrap_at));
        let at_wrap = nl.eq(q, wrap);
        let zero = nl.constant(&Bv::zero(4));
        let next = nl.mux(at_wrap, zero, plus);
        nl.connect_dff_data(ff, next);
        let limit_net = nl.constant(&Bv::from_u64(4, limit));
        let ok = nl.lt(q, limit_net);
        nl.mark_output("ok", ok);
        (nl, ok)
    }

    #[test]
    fn invariant_that_holds_is_proved() {
        // q wraps at 5, so q < 9 always holds (and is inductive: q <= 8
        // implies q' <= 8 because q' is either 0 or q+1 <= 9... the inductive
        // step actually needs q < 9 ⇒ q+1 < 9 or wrap; with wrap at 5 the
        // monitor q < 9 is not inductive on its own, so the checker falls
        // back to the bounded result).
        let (nl, ok) = bounded_counter(9, 5);
        let property = Property::always(&nl, "counter_below_9", ok);
        let verification = Verification::new(nl, property);
        let options = CheckerOptions {
            max_frames: 10,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&verification);
        assert!(report.result.is_pass(), "got {:?}", report.result);
        assert!(report.stats.cpu_seconds() >= 0.0);
    }

    #[test]
    fn invariant_violation_produces_validated_counterexample() {
        // q wraps at 12 but the assertion claims q < 5: fails after 5 cycles.
        let (nl, ok) = bounded_counter(5, 12);
        let property = Property::always(&nl, "counter_below_5", ok);
        let verification = Verification::new(nl, property);
        let options = CheckerOptions {
            max_frames: 10,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&verification);
        match report.result {
            CheckResult::CounterExample { trace } => {
                assert!(
                    trace.len() >= 5,
                    "needs at least 5 cycles, got {}",
                    trace.len()
                );
            }
            other => panic!("expected counter-example, got {other:?}"),
        }
    }

    #[test]
    fn inductive_invariant_is_proved_not_just_bounded() {
        // A register that only ever holds its own value ANDed with the input:
        // once zero, always zero. Monitor: q == 0. From the reset state this
        // is inductive.
        let mut nl = Netlist::new("sticky_zero");
        let d = nl.input("d", 4);
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let next = nl.and2(q, d);
        nl.connect_dff_data(ff, next);
        let zero = nl.constant(&Bv::zero(4));
        let ok = nl.eq(q, zero);
        nl.mark_output("ok", ok);
        let property = Property::always(&nl, "stays_zero", ok);
        let verification = Verification::new(nl, property);
        let report = AssertionChecker::with_defaults().check(&verification);
        assert_eq!(report.result, CheckResult::Proved);
    }

    #[test]
    fn witness_generation() {
        // Find an execution in which the counter reaches 3.
        let (mut nl, _) = bounded_counter(9, 12);
        let q = {
            // The flip-flop output is the first (and only) flip-flop's output.
            let ff = nl.flip_flops()[0];
            nl.gate(ff).output
        };
        let reaches = monitor::reaches_value(&mut nl, q, &Bv::from_u64(4, 3));
        let property = Property::eventually(&nl, "reach_3", reaches);
        let verification = Verification::new(nl, property);
        let options = CheckerOptions {
            max_frames: 8,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&verification);
        match report.result {
            CheckResult::WitnessFound { trace } => assert_eq!(trace.len(), 4),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_value_has_no_witness() {
        // The counter wraps at 5, so it never reaches 9.
        let (mut nl, _) = bounded_counter(10, 5);
        let q = {
            let ff = nl.flip_flops()[0];
            nl.gate(ff).output
        };
        let reaches = monitor::reaches_value(&mut nl, q, &Bv::from_u64(4, 9));
        let property = Property::eventually(&nl, "reach_9", reaches);
        let verification = Verification::new(nl, property);
        let options = CheckerOptions {
            max_frames: 10,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&verification);
        assert_eq!(report.result, CheckResult::WitnessNotFound { frames: 10 });
    }

    #[test]
    fn environment_constraints_restrict_inputs() {
        // next_q = q + in; environment forces in == 0, so q stays 0 and the
        // assertion q == 0 holds; without the environment it would fail.
        let mut nl = Netlist::new("env");
        let input = nl.input("in", 4);
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let next = nl.add(q, input);
        nl.connect_dff_data(ff, next);
        let zero = nl.constant(&Bv::zero(4));
        let ok = nl.eq(q, zero);
        let zero2 = nl.constant(&Bv::zero(4));
        let input_is_zero = nl.eq(input, zero2);
        nl.mark_output("ok", ok);

        let property = Property::always(&nl, "q_zero", ok);
        let with_env =
            Verification::new(nl.clone(), property.clone()).with_environment(input_is_zero);
        let options = CheckerOptions {
            max_frames: 4,
            ..CheckerOptions::default()
        };
        let checker = AssertionChecker::new(options);
        assert!(checker.check(&with_env).result.is_pass());

        let without_env = Verification::new(nl, property);
        assert!(matches!(
            checker.check(&without_env).result,
            CheckResult::CounterExample { .. }
        ));
    }
}
