//! Counter-example and witness traces.

use std::collections::HashMap;
use std::fmt;
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};
use wlac_sim::simulate;

/// A finite execution of the original (sequential) design: an initial state
/// plus primary-input values for every cycle.
///
/// Produced by the checker as a counter-example to a safety assertion or as a
/// witness for an `Eventually` objective, and replayable against the design
/// with a concrete simulator via [`Trace::replay_monitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Flip-flop output values at cycle 0 (original netlist nets).
    pub initial_state: Vec<(NetId, Bv)>,
    /// Primary input values per cycle (original netlist nets).
    pub inputs: Vec<Vec<(NetId, Bv)>>,
}

impl Trace {
    /// Number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The value driven on `net` during `cycle`, if the trace specifies one.
    pub fn input_value(&self, cycle: usize, net: NetId) -> Option<&Bv> {
        self.inputs
            .get(cycle)
            .and_then(|frame| frame.iter().find(|(n, _)| *n == net).map(|(_, v)| v))
    }

    /// Replays the trace on `netlist` and returns the value of `monitor` in
    /// every cycle (the pre-clock, combinational view of each cycle).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (width mismatches, combinational cycles).
    pub fn replay_monitor(
        &self,
        netlist: &Netlist,
        monitor: NetId,
    ) -> Result<Vec<bool>, wlac_sim::SimulateError> {
        let cycles: Vec<HashMap<NetId, Bv>> = self
            .inputs
            .iter()
            .map(|frame| frame.iter().cloned().collect())
            .collect();
        let run = simulate(netlist, &self.initial_state, &cycles)?;
        Ok((0..self.len())
            .map(|cycle| !run.value(cycle, monitor).is_zero())
            .collect())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace over {} cycle(s)", self.len())?;
        if !self.initial_state.is_empty() {
            writeln!(f, "  initial state:")?;
            for (net, value) in &self.initial_state {
                writeln!(f, "    {net} = {value}")?;
            }
        }
        for (cycle, frame) in self.inputs.iter().enumerate() {
            writeln!(f, "  cycle {cycle}:")?;
            for (net, value) in frame {
                writeln!(f, "    {net} = {value}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_against_simple_design() {
        // q' = q + in ; monitor: q != 3.
        let mut nl = Netlist::new("acc");
        let input = nl.input("in", 4);
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let next = nl.add(q, input);
        nl.connect_dff_data(ff, next);
        let three = nl.constant(&Bv::from_u64(4, 3));
        let ok = nl.ne(q, three);
        nl.mark_output("ok", ok);

        let trace = Trace {
            initial_state: vec![(q, Bv::zero(4))],
            inputs: vec![
                vec![(input, Bv::from_u64(4, 1))],
                vec![(input, Bv::from_u64(4, 2))],
                vec![(input, Bv::from_u64(4, 5))],
            ],
        };
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.input_value(1, input), Some(&Bv::from_u64(4, 2)));
        let monitor_values = trace.replay_monitor(&nl, ok).unwrap();
        // q is 0, 1, 3 at the three cycles → monitor fails at the last cycle.
        assert_eq!(monitor_values, vec![true, true, false]);
        let text = trace.to_string();
        assert!(text.contains("cycle 2"));
        assert!(text.contains("initial state"));
    }
}
