//! Search statistics and memory accounting.

use crate::implication::ImplicationStats;
use std::fmt;
use std::time::Duration;

/// Phase-attributed wall-clock breakdown of a check, in nanoseconds.
///
/// Populated only when [`crate::CheckerOptions::trace`] is set: the phase
/// clock costs two monotonic-clock reads per attribution point, which the
/// zero-overhead default path must not pay. When populated, the fields
/// partition [`CheckStats::elapsed`]: everything the search loop does lands
/// in a named phase and the checker charges the remainder (unrolling,
/// requirement seeding, trace extraction and validation) to `other`, so
/// `total()` tracks `elapsed` to within clock-read slack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Word-level implication: initial propagation plus the fixed-point run
    /// after every decision and backtrack re-assignment.
    pub implication: u64,
    /// Unjustified-gate maintenance and decision-cut computation.
    pub justification: u64,
    /// Decision-point selection (bias ordering, ESTG penalties).
    pub decision: u64,
    /// Modular arithmetic datapath resolution that ended in infeasibility or
    /// an inconclusive verdict (island solving, fact lookups).
    pub datapath: u64,
    /// The satisfiable leaf: the final datapath resolution that concretized a
    /// model, including solution sampling and full-circuit validation.
    pub sat_leaf: u64,
    /// Chronological backtracking (trail restores, alternative re-assignment
    /// up to the implication hand-off).
    pub backtrack: u64,
    /// Everything outside the search loop: time-frame expansion, requirement
    /// seeding, trace extraction/replay and induction bookkeeping.
    pub other: u64,
}

impl PhaseNanos {
    /// Sum of all phases.
    pub fn total(&self) -> u64 {
        let PhaseNanos {
            implication,
            justification,
            decision,
            datapath,
            sat_leaf,
            backtrack,
            other,
        } = self;
        implication + justification + decision + datapath + sat_leaf + backtrack + other
    }

    /// Merges another breakdown into this one. Exhaustive destructuring: a
    /// new phase cannot be added without being merged here.
    pub fn absorb(&mut self, other: &PhaseNanos) {
        let PhaseNanos {
            implication,
            justification,
            decision,
            datapath,
            sat_leaf,
            backtrack,
            other: other_nanos,
        } = other;
        self.implication += implication;
        self.justification += justification;
        self.decision += decision;
        self.datapath += datapath;
        self.sat_leaf += sat_leaf;
        self.backtrack += backtrack;
        self.other += other_nanos;
    }
}

/// Effort and resource statistics for one property check, mirroring the
/// columns of the paper's Table 2 (CPU time, memory) plus search counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckStats {
    /// Number of branch-and-bound decisions.
    pub decisions: u64,
    /// Number of conflicts: decision assignments refuted by implication plus
    /// datapath resolutions proved infeasible. Every conflict triggers
    /// backtracking, but one backtrack run can unwind several levels, so the
    /// two counters differ.
    pub conflicts: u64,
    /// Number of backtracks.
    pub backtracks: u64,
    /// Implication effort counters.
    pub implication: ImplicationStats,
    /// Number of modular arithmetic solver invocations.
    pub arithmetic_calls: u64,
    /// Wall-clock nanoseconds spent resolving residual datapath constraints
    /// (island solving plus concretization), the denominator-side of the
    /// `ns_per_arith_call` performance metric.
    pub datapath_nanos: u64,
    /// Datapath resolutions served by an already-built island cache.
    pub island_cache_hits: u64,
    /// Datapath resolutions that had to build the island topology first.
    pub island_cache_misses: u64,
    /// Island solves skipped because a warm-started knowledge base already
    /// held an infeasibility proof for the exact solve input.
    pub datapath_fact_hits: u64,
    /// Gates re-examined by unjustified-gate maintenance. With the dirty
    /// worklist this is proportional to the changed region per decision;
    /// a full rescan per decision would put it near `decisions × gates`.
    pub justify_gates_rechecked: u64,
    /// Number of time-frames of the deepest unrolling explored.
    pub frames_explored: usize,
    /// Phase-attributed wall-clock breakdown (all zero unless the check ran
    /// with [`crate::CheckerOptions::trace`] enabled).
    pub phases: PhaseNanos,
    /// Wall-clock time spent on the check.
    pub elapsed: Duration,
    /// Peak estimated live memory of the solver data structures, in bytes.
    pub peak_memory_bytes: usize,
}

impl CheckStats {
    /// Peak memory in megabytes (the unit of the paper's Table 2).
    pub fn peak_memory_mb(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// CPU time in seconds (the unit of the paper's Table 2).
    pub fn cpu_seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Average wall-clock nanoseconds per modular arithmetic solver call
    /// (`None` when the datapath solver never ran).
    pub fn ns_per_arith_call(&self) -> Option<f64> {
        (self.arithmetic_calls > 0)
            .then(|| self.datapath_nanos as f64 / self.arithmetic_calls as f64)
    }

    /// Fraction of datapath resolutions that reused a cached island topology
    /// (`None` when the datapath solver never ran).
    pub fn island_cache_hit_rate(&self) -> Option<f64> {
        let total = self.island_cache_hits + self.island_cache_misses;
        (total > 0).then(|| self.island_cache_hits as f64 / total as f64)
    }

    /// Merges the counters of a sub-check (e.g. one bound of the bounded
    /// search) into an aggregate.
    pub fn absorb(&mut self, other: &CheckStats) {
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.backtracks += other.backtracks;
        self.implication.absorb(&other.implication);
        self.arithmetic_calls += other.arithmetic_calls;
        self.datapath_nanos += other.datapath_nanos;
        self.island_cache_hits += other.island_cache_hits;
        self.island_cache_misses += other.island_cache_misses;
        self.datapath_fact_hits += other.datapath_fact_hits;
        self.justify_gates_rechecked += other.justify_gates_rechecked;
        self.frames_explored = self.frames_explored.max(other.frames_explored);
        self.phases.absorb(&other.phases);
        self.elapsed += other.elapsed;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
    }
}

impl fmt::Display for CheckStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {:.2}s, mem {:.2}MB, {} decisions, {} conflicts, {} backtracks, {} implications, {} arith calls, {} fact hits, {} justify rechecks, {} frames",
            self.cpu_seconds(),
            self.peak_memory_mb(),
            self.decisions,
            self.conflicts,
            self.backtracks,
            self.implication.gate_evaluations,
            self.arithmetic_calls,
            self.datapath_fact_hits,
            self.justify_gates_rechecked,
            self.frames_explored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_absorb() {
        let mut a = CheckStats {
            decisions: 10,
            backtracks: 2,
            peak_memory_bytes: 2 * 1024 * 1024,
            elapsed: Duration::from_millis(500),
            frames_explored: 3,
            ..CheckStats::default()
        };
        let b = CheckStats {
            decisions: 5,
            backtracks: 1,
            peak_memory_bytes: 1024 * 1024,
            elapsed: Duration::from_millis(250),
            frames_explored: 7,
            ..CheckStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 15);
        assert_eq!(a.backtracks, 3);
        assert_eq!(a.frames_explored, 7);
        assert_eq!(a.ns_per_arith_call(), None);
        assert_eq!(a.island_cache_hit_rate(), None);
        assert!((a.peak_memory_mb() - 2.0).abs() < 1e-9);
        assert!((a.cpu_seconds() - 0.75).abs() < 1e-9);
        let text = a.to_string();
        assert!(text.contains("decisions"));
        assert!(text.contains("MB"));
    }

    #[test]
    fn display_includes_fact_hits_and_justify_rechecks() {
        let stats = CheckStats {
            datapath_fact_hits: 11,
            justify_gates_rechecked: 22,
            ..CheckStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("11 fact hits"), "{text}");
        assert!(text.contains("22 justify rechecks"), "{text}");
    }

    #[test]
    fn implication_absorb_flows_through_check_stats() {
        let mut a = CheckStats::default();
        a.implication.gate_evaluations = 5;
        a.implication.refinements = 2;
        let mut b = CheckStats::default();
        b.implication.gate_evaluations = 7;
        b.implication.refinements = 3;
        a.absorb(&b);
        assert_eq!(a.implication.gate_evaluations, 12);
        assert_eq!(a.implication.refinements, 5);
    }

    #[test]
    fn phase_nanos_total_and_absorb() {
        let mut a = PhaseNanos {
            implication: 10,
            justification: 20,
            decision: 5,
            datapath: 30,
            sat_leaf: 15,
            backtrack: 8,
            other: 2,
        };
        assert_eq!(a.total(), 90);
        a.absorb(&a.clone());
        assert_eq!(a.total(), 180);
        assert_eq!(a.implication, 20);
        // Phases ride along in CheckStats::absorb.
        let mut outer = CheckStats::default();
        let inner = CheckStats {
            phases: a,
            ..CheckStats::default()
        };
        outer.absorb(&inner);
        assert_eq!(outer.phases.total(), 180);
    }

    #[test]
    fn datapath_metrics() {
        let mut a = CheckStats {
            arithmetic_calls: 4,
            datapath_nanos: 1000,
            island_cache_hits: 3,
            island_cache_misses: 1,
            ..CheckStats::default()
        };
        assert_eq!(a.ns_per_arith_call(), Some(250.0));
        assert_eq!(a.island_cache_hit_rate(), Some(0.75));
        let b = CheckStats {
            arithmetic_calls: 4,
            datapath_nanos: 600,
            island_cache_hits: 4,
            island_cache_misses: 0,
            ..CheckStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.arithmetic_calls, 8);
        assert_eq!(a.datapath_nanos, 1600);
        assert_eq!(a.ns_per_arith_call(), Some(200.0));
        assert_eq!(a.island_cache_hit_rate(), Some(0.875));
    }
}
