//! Search statistics and memory accounting.

use crate::implication::ImplicationStats;
use std::fmt;
use std::time::Duration;

/// Effort and resource statistics for one property check, mirroring the
/// columns of the paper's Table 2 (CPU time, memory) plus search counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckStats {
    /// Number of branch-and-bound decisions.
    pub decisions: u64,
    /// Number of backtracks.
    pub backtracks: u64,
    /// Implication effort counters.
    pub implication: ImplicationStats,
    /// Number of modular arithmetic solver invocations.
    pub arithmetic_calls: u64,
    /// Wall-clock nanoseconds spent resolving residual datapath constraints
    /// (island solving plus concretization), the denominator-side of the
    /// `ns_per_arith_call` performance metric.
    pub datapath_nanos: u64,
    /// Datapath resolutions served by an already-built island cache.
    pub island_cache_hits: u64,
    /// Datapath resolutions that had to build the island topology first.
    pub island_cache_misses: u64,
    /// Island solves skipped because a warm-started knowledge base already
    /// held an infeasibility proof for the exact solve input.
    pub datapath_fact_hits: u64,
    /// Gates re-examined by unjustified-gate maintenance. With the dirty
    /// worklist this is proportional to the changed region per decision;
    /// a full rescan per decision would put it near `decisions × gates`.
    pub justify_gates_rechecked: u64,
    /// Number of time-frames of the deepest unrolling explored.
    pub frames_explored: usize,
    /// Wall-clock time spent on the check.
    pub elapsed: Duration,
    /// Peak estimated live memory of the solver data structures, in bytes.
    pub peak_memory_bytes: usize,
}

impl CheckStats {
    /// Peak memory in megabytes (the unit of the paper's Table 2).
    pub fn peak_memory_mb(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// CPU time in seconds (the unit of the paper's Table 2).
    pub fn cpu_seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Average wall-clock nanoseconds per modular arithmetic solver call
    /// (`None` when the datapath solver never ran).
    pub fn ns_per_arith_call(&self) -> Option<f64> {
        (self.arithmetic_calls > 0)
            .then(|| self.datapath_nanos as f64 / self.arithmetic_calls as f64)
    }

    /// Fraction of datapath resolutions that reused a cached island topology
    /// (`None` when the datapath solver never ran).
    pub fn island_cache_hit_rate(&self) -> Option<f64> {
        let total = self.island_cache_hits + self.island_cache_misses;
        (total > 0).then(|| self.island_cache_hits as f64 / total as f64)
    }

    /// Merges the counters of a sub-check (e.g. one bound of the bounded
    /// search) into an aggregate.
    pub fn absorb(&mut self, other: &CheckStats) {
        self.decisions += other.decisions;
        self.backtracks += other.backtracks;
        self.implication.gate_evaluations += other.implication.gate_evaluations;
        self.implication.refinements += other.implication.refinements;
        self.arithmetic_calls += other.arithmetic_calls;
        self.datapath_nanos += other.datapath_nanos;
        self.island_cache_hits += other.island_cache_hits;
        self.island_cache_misses += other.island_cache_misses;
        self.datapath_fact_hits += other.datapath_fact_hits;
        self.justify_gates_rechecked += other.justify_gates_rechecked;
        self.frames_explored = self.frames_explored.max(other.frames_explored);
        self.elapsed += other.elapsed;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
    }
}

impl fmt::Display for CheckStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {:.2}s, mem {:.2}MB, {} decisions, {} backtracks, {} implications, {} arith calls, {} frames",
            self.cpu_seconds(),
            self.peak_memory_mb(),
            self.decisions,
            self.backtracks,
            self.implication.gate_evaluations,
            self.arithmetic_calls,
            self.frames_explored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_absorb() {
        let mut a = CheckStats {
            decisions: 10,
            backtracks: 2,
            peak_memory_bytes: 2 * 1024 * 1024,
            elapsed: Duration::from_millis(500),
            frames_explored: 3,
            ..CheckStats::default()
        };
        let b = CheckStats {
            decisions: 5,
            backtracks: 1,
            peak_memory_bytes: 1024 * 1024,
            elapsed: Duration::from_millis(250),
            frames_explored: 7,
            ..CheckStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 15);
        assert_eq!(a.backtracks, 3);
        assert_eq!(a.frames_explored, 7);
        assert_eq!(a.ns_per_arith_call(), None);
        assert_eq!(a.island_cache_hit_rate(), None);
        assert!((a.peak_memory_mb() - 2.0).abs() < 1e-9);
        assert!((a.cpu_seconds() - 0.75).abs() < 1e-9);
        let text = a.to_string();
        assert!(text.contains("decisions"));
        assert!(text.contains("MB"));
    }

    #[test]
    fn datapath_metrics() {
        let mut a = CheckStats {
            arithmetic_calls: 4,
            datapath_nanos: 1000,
            island_cache_hits: 3,
            island_cache_misses: 1,
            ..CheckStats::default()
        };
        assert_eq!(a.ns_per_arith_call(), Some(250.0));
        assert_eq!(a.island_cache_hit_rate(), Some(0.75));
        let b = CheckStats {
            arithmetic_calls: 4,
            datapath_nanos: 600,
            island_cache_hits: 4,
            island_cache_misses: 0,
            ..CheckStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.arithmetic_calls, 8);
        assert_eq!(a.datapath_nanos, 1600);
        assert_eq!(a.ns_per_arith_call(), Some(200.0));
        assert_eq!(a.island_cache_hit_rate(), Some(0.875));
    }
}
