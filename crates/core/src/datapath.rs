//! Residual datapath constraint extraction and resolution.
//!
//! Once the control constraints are justified, the remaining requirements sit
//! on arithmetic units in the datapath. Following Section 4 of the paper,
//! the still-unjustified arithmetic gates are grouped into width-homogeneous
//! *islands*, each island is transcribed into a modular constraint system
//! over ℤ/2ʷℤ (adders and subtractors as linear equations, multipliers as
//! product constraints, partially-known values as low-bit congruences) and
//! solved by the modular arithmetic solver. A feasible closed-form solution
//! is then instantiated, propagated back into the word-level assignment and
//! finally validated by concrete evaluation of the whole (unrolled) circuit.
//!
//! # Incremental resolution
//!
//! The datapath leaf runs once per candidate control solution — it is the
//! inner loop of the whole search — so everything that does not depend on the
//! current decision level is computed once per search and cached in
//! [`DatapathContext`]:
//!
//! * **island topology** depends only on the gate structure, not on values:
//!   the width-homogeneous components are flood-filled once and re-sliced per
//!   decision by which gates are currently unjustified;
//! * **structural equations** of each island are kept pre-reduced to echelon
//!   form in a [`CheckpointedSystem`]; a per-decision solve only pushes the
//!   current value rows (fixed variables and low-bit congruences) under a
//!   checkpoint and resumes elimination from the saved pivots;
//! * **speculative refinement** reuses the search's own assignment and
//!   propagator through the word-level delta trail (mark / refine /
//!   backtrack) instead of cloning the assignment per call;
//! * the **concretization pass** reuses a cached combinational order and a
//!   persistent value buffer instead of rebuilding both per attempt.
//!
//! Setting [`crate::CheckerOptions::incremental_datapath`] to `false` rebuilds
//! all cached state on every call through the *same* code path — the
//! from-scratch oracle used by the differential tests.

use crate::assignment::Assignment;
use crate::config::CheckerOptions;
use crate::implication::Propagator;
use crate::justify::bump_generation;
use crate::stats::CheckStats;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;
use wlac_bv::{Bv, Bv3, Tv};
use wlac_modsolve::{
    solve_products_checkpointed, CheckpointedSystem, MixedOutcome, ProductConstraint, Ring,
    SolveAbort,
};
use wlac_netlist::{GateId, GateKind, NetId, Netlist};
use wlac_sim::eval_gate;

/// Sentinel for "not part of any island" in the dense gate/net maps.
const NONE: u32 = u32::MAX;

/// Result of trying to discharge the residual datapath constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DatapathOutcome {
    /// A complete concrete assignment (value per net) satisfying every
    /// requirement was constructed.
    Consistent(Vec<Bv>),
    /// Some extracted constraint subset is unsatisfiable in the modular ring;
    /// the current control solution must be abandoned (sound for proving).
    Infeasible,
    /// Neither a solution nor a refutation could be established within the
    /// configured budget.
    Inconclusive,
}

/// An island of width-homogeneous arithmetic gates with its pre-reduced
/// constraint template.
#[derive(Debug)]
struct CachedIsland {
    width: usize,
    ring: Ring,
    /// Island nets in ascending id order; the solver variable of `nets[i]`
    /// is `i` (the dense `net_var` map holds the inverse).
    nets: Vec<NetId>,
    /// Multiplier constraints, linearised by candidate enumeration at solve
    /// time.
    products: Vec<ProductConstraint>,
    /// Structural equations pre-reduced to echelon form; per-decision value
    /// rows are pushed under a checkpoint.
    system: CheckpointedSystem,
}

/// Result of solving one island.
enum IslandOutcome {
    Assignment(Vec<u64>),
    Infeasible,
    Unknown,
}

/// One proven-infeasible island configuration (see [`DatapathFacts`]).
///
/// The key captures *everything* the island solve depends on: the identity of
/// the island within the expanded circuit (`net_count` pins down the
/// expansion depth of the deterministic frame-major unrolling, `island` the
/// flood-fill component within it), the nonlinear enumeration budget, and the
/// exact value rows pushed for the solve — per island net, how many low bits
/// are known and what they are (`known_low == width` ⇔ fully fixed). Two
/// solves with equal keys are the same pure computation, so replaying the
/// verdict is sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IslandFact {
    net_count: u32,
    island: u32,
    enum_limit: u32,
    values: Box<[(u8, u64)]>,
}

/// Cross-run memo of modular-solver infeasibility proofs.
///
/// The datapath leaf is the inner loop of the search; across properties of
/// the same design the search keeps re-proving the same island
/// infeasibilities (the expanded circuit and the value patterns reaching the
/// datapath repeat). This store memoises those proofs keyed by the full solve
/// input ([`IslandFact`]), so a warm-started check skips straight to the
/// backtrack. Feasible solves are *not* memoised — their model would have to
/// be revalidated anyway, and infeasibility is where the pruning value is.
#[derive(Debug, Clone, Default)]
pub struct DatapathFacts {
    facts: HashSet<IslandFact>,
}

impl DatapathFacts {
    /// Creates an empty store.
    pub fn new() -> Self {
        DatapathFacts::default()
    }

    /// Number of recorded infeasibility facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` when no facts have been recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Merges another store's facts into this one.
    pub fn merge(&mut self, other: &DatapathFacts) {
        for fact in &other.facts {
            self.facts.insert(fact.clone());
        }
    }

    /// Approximate number of bytes held by the store.
    pub fn memory_bytes(&self) -> usize {
        self.facts
            .iter()
            .map(|f| f.values.len() * 16 + 48)
            .sum::<usize>()
            + 48
    }
}

/// The value-row key of one island under the current assignment: per net (in
/// island net order), the number of known low bits and their value. This is
/// exactly the information [`solve_island`] pushes under its checkpoint.
fn island_value_key(island: &CachedIsland, net_var: &[u32], asg: &Assignment) -> Box<[(u8, u64)]> {
    island
        .nets
        .iter()
        .map(|net| {
            debug_assert!(net_var[net.index()] != NONE);
            let cube = asg.value(*net);
            let known_low = (0..cube.width())
                .take_while(|i| cube.bit(*i).is_known())
                .count();
            let mut low_value = 0u64;
            for i in 0..known_low {
                if cube.bit(i) == Tv::One {
                    low_value |= 1 << i;
                }
            }
            (known_low as u8, low_value)
        })
        .collect()
}

/// Per-search datapath state: cached island topology, pre-reduced solver
/// templates and reusable concretization buffers. Created once per (unrolled)
/// netlist and shared by every decision of the search.
#[derive(Debug)]
pub(crate) struct DatapathContext {
    /// Lazily built island cache (`islands_built` gates it so control-only
    /// searches never pay for it).
    islands_built: bool,
    islands: Vec<CachedIsland>,
    /// Gate index → island id ([`NONE`] when the gate is in no island).
    gate_island: Vec<u32>,
    /// Net index → variable index within its owning island. Valid only for
    /// island nets; islands never share a net (same-width adjacency merges
    /// components, and the width filter excludes everything else).
    net_var: Vec<u32>,
    /// Scratch: ids of islands containing a currently-unjustified gate.
    active: Vec<usize>,
    island_stamp: Vec<u32>,
    active_gen: u32,
    /// Cached combinational evaluation order for concretization.
    order_built: bool,
    order_ok: bool,
    order: Vec<GateId>,
    /// Concrete value per net (the candidate completion being validated).
    values: Vec<Bv>,
    /// Per-gate input scratch for [`eval_gate`].
    inputs: Vec<Bv>,
    /// Flood-fill worklist.
    queue: VecDeque<GateId>,
}

impl DatapathContext {
    pub(crate) fn new(netlist: &Netlist) -> Self {
        DatapathContext {
            islands_built: false,
            islands: Vec::new(),
            gate_island: vec![NONE; netlist.gate_count()],
            net_var: vec![NONE; netlist.net_count()],
            active: Vec::new(),
            island_stamp: Vec::new(),
            active_gen: 0,
            order_built: false,
            order_ok: false,
            order: Vec::new(),
            values: Vec::new(),
            inputs: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Approximate heap bytes held by the datapath context: the dense
    /// gate/net maps, the cached islands (net lists, product constraints and
    /// pre-reduced solver templates) and the concretization scratch. Feeds
    /// the search's memory estimate for the paper's Table 2 column.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let bv_heap = |v: &Bv| v.width().div_ceil(64) * 8 + 16;
        let islands: usize = self
            .islands
            .iter()
            .map(|island| {
                island.nets.capacity() * size_of::<NetId>()
                    + island.products.capacity() * size_of::<ProductConstraint>()
                    // Echelon rows: one u64 per variable per retained row.
                    + island.system.num_equations() * (island.system.num_vars() * 8 + 32)
            })
            .sum();
        islands
            + self.gate_island.capacity() * size_of::<u32>()
            + self.net_var.capacity() * size_of::<u32>()
            + self.active.capacity() * size_of::<usize>()
            + self.island_stamp.capacity() * size_of::<u32>()
            + self.order.capacity() * size_of::<GateId>()
            + self.values.iter().map(bv_heap).sum::<usize>()
            + self.inputs.iter().map(bv_heap).sum::<usize>()
            + self.queue.capacity() * size_of::<GateId>()
    }

    /// Attempts to complete the current (control-justified) assignment into a
    /// concrete solution satisfying `requirements`.
    ///
    /// `unjustified` is the caller's current unjustified-gate list (the
    /// search already maintains it — recomputing here would double the scan).
    /// Speculative island solutions are merged into `asg` through the shared
    /// `propagator` and rolled back via the delta trail before returning, so
    /// the assignment is left exactly as it was on entry.
    #[allow(clippy::too_many_arguments)] // the full leaf-call contract of the search
    pub(crate) fn resolve(
        &mut self,
        netlist: &Netlist,
        asg: &mut Assignment,
        propagator: &mut Propagator,
        unjustified: &[GateId],
        requirements: &[(NetId, Bv3)],
        options: &CheckerOptions,
        facts: Option<&mut DatapathFacts>,
        stats: &mut CheckStats,
    ) -> DatapathOutcome {
        let start = Instant::now();
        if !options.incremental_datapath {
            self.invalidate();
        }
        let outcome = self.resolve_inner(
            netlist,
            asg,
            propagator,
            unjustified,
            requirements,
            options,
            facts,
            stats,
        );
        stats.datapath_nanos += start.elapsed().as_nanos() as u64;
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_inner(
        &mut self,
        netlist: &Netlist,
        asg: &mut Assignment,
        propagator: &mut Propagator,
        unjustified: &[GateId],
        requirements: &[(NetId, Bv3)],
        options: &CheckerOptions,
        mut facts: Option<&mut DatapathFacts>,
        stats: &mut CheckStats,
    ) -> DatapathOutcome {
        // With nothing unjustified every requirement is already implied by
        // the input cubes and any completion works; in ablation mode
        // (`use_arithmetic_solver` off) fall back to sampling completions.
        if unjustified.is_empty() || !options.use_arithmetic_solver {
            return self.concretize_outcome(netlist, asg, requirements);
        }

        self.ensure_islands(netlist, stats);
        self.collect_active(unjustified);
        if self.active.is_empty() {
            return self.concretize_outcome(netlist, asg, requirements);
        }

        // Speculative refinement: island solutions are merged into the shared
        // assignment under a trail mark instead of cloning it.
        let mark = asg.mark();
        for idx in 0..self.active.len() {
            let island_id = self.active[idx];
            // A memoised infeasibility proof for this exact solve input lets
            // the search backtrack without invoking the solver at all.
            let fact_key = facts.as_deref().map(|_| IslandFact {
                net_count: netlist.net_count() as u32,
                island: island_id as u32,
                enum_limit: options.nonlinear_enumeration_limit as u32,
                values: island_value_key(&self.islands[island_id], &self.net_var, asg),
            });
            if let (Some(store), Some(key)) = (facts.as_deref(), fact_key.as_ref()) {
                if store.facts.contains(key) {
                    stats.datapath_fact_hits += 1;
                    asg.backtrack_to(mark);
                    return DatapathOutcome::Infeasible;
                }
            }
            stats.arithmetic_calls += 1;
            let outcome = solve_island(&mut self.islands[island_id], &self.net_var, asg, options);
            if matches!(outcome, IslandOutcome::Infeasible) {
                if let (Some(store), Some(key)) = (facts.as_deref_mut(), fact_key) {
                    store.facts.insert(key);
                }
            }
            match outcome {
                IslandOutcome::Assignment(values) => {
                    // Merge the island solution into the assignment and re-run
                    // implication so the rest of the circuit sees it.
                    let island = &self.islands[island_id];
                    for (net, value) in island.nets.iter().zip(values) {
                        let cube = Bv3::from_bv(&Bv::from_u64(island.width, value));
                        match asg.refine(*net, &cube) {
                            Ok(true) => propagator.enqueue_net(netlist, *net),
                            Ok(false) => {}
                            Err(_) => {
                                // Drop events enqueued for the rolled-back
                                // merge so the propagator, like the
                                // assignment, is left as it was on entry.
                                propagator.clear();
                                asg.backtrack_to(mark);
                                return DatapathOutcome::Inconclusive;
                            }
                        }
                    }
                    if propagator
                        .run(netlist, asg, &mut stats.implication)
                        .is_err()
                    {
                        asg.backtrack_to(mark);
                        return DatapathOutcome::Inconclusive;
                    }
                }
                IslandOutcome::Infeasible => {
                    asg.backtrack_to(mark);
                    return DatapathOutcome::Infeasible;
                }
                // An exhausted enumeration budget and a failed concretization
                // are both inconclusive, so nothing distinguishes this case
                // downstream: fall through to concretization regardless.
                IslandOutcome::Unknown => {}
            }
        }
        let outcome = self.concretize_outcome(netlist, asg, requirements);
        asg.backtrack_to(mark);
        outcome
    }

    /// Runs the concretization pass and wraps it as a [`DatapathOutcome`].
    ///
    /// When the islands were individually satisfiable but the sampled
    /// combination does not extend to a full solution, the result is
    /// inconclusive (not a refutation) — same as an exhausted sample budget.
    fn concretize_outcome(
        &mut self,
        netlist: &Netlist,
        asg: &Assignment,
        requirements: &[(NetId, Bv3)],
    ) -> DatapathOutcome {
        if self.concretize_and_check(netlist, asg, requirements) {
            DatapathOutcome::Consistent(self.values.clone())
        } else {
            DatapathOutcome::Inconclusive
        }
    }

    /// Drops every cached artefact (islands, templates, evaluation order) so
    /// the next resolution rebuilds from scratch — the differential oracle
    /// path of [`CheckerOptions::incremental_datapath`]` = false`.
    fn invalidate(&mut self) {
        self.islands_built = false;
        self.islands.clear();
        self.gate_island.fill(NONE);
        self.net_var.fill(NONE);
        self.order_built = false;
        self.order_ok = false;
        self.order.clear();
    }

    /// Builds the island cache on first use (island topology depends only on
    /// the gate structure, never on values).
    fn ensure_islands(&mut self, netlist: &Netlist, stats: &mut CheckStats) {
        if self.islands_built {
            stats.island_cache_hits += 1;
            return;
        }
        stats.island_cache_misses += 1;
        self.islands_built = true;
        for (seed, seed_gate) in netlist.gates() {
            let width = netlist.net_width(seed_gate.output);
            if !is_island_gate(&seed_gate.kind)
                || !(2..=64).contains(&width)
                || self.gate_island[seed.index()] != NONE
            {
                continue;
            }
            let id = self.islands.len() as u32;
            let mut gates: Vec<GateId> = Vec::new();
            let mut nets: Vec<NetId> = Vec::new();
            self.queue.clear();
            self.queue.push_back(seed);
            self.gate_island[seed.index()] = id;
            while let Some(gate_id) = self.queue.pop_front() {
                let gate = netlist.gate(gate_id);
                gates.push(gate_id);
                for net in gate.inputs.iter().chain(std::iter::once(&gate.output)) {
                    if netlist.net_width(*net) != width || self.net_var[net.index()] != NONE {
                        continue;
                    }
                    self.net_var[net.index()] = 0; // claimed; final index assigned below
                    nets.push(*net);
                    // Explore neighbouring arithmetic gates of the same width.
                    let driver = netlist.driver(*net);
                    for n in netlist.fanouts(*net).iter().copied().chain(driver) {
                        let g = netlist.gate(n);
                        if is_island_gate(&g.kind)
                            && netlist.net_width(g.output) == width
                            && self.gate_island[n.index()] == NONE
                        {
                            self.gate_island[n.index()] = id;
                            self.queue.push_back(n);
                        }
                    }
                }
            }
            nets.sort();
            for (var, net) in nets.iter().enumerate() {
                self.net_var[net.index()] = var as u32;
            }
            gates.sort();
            let island = build_island_template(netlist, width, nets, &gates, &self.net_var);
            self.islands.push(island);
        }
        self.island_stamp = vec![0; self.islands.len()];
        self.active_gen = 0;
    }

    /// Re-slices the cached topology by the current justification frontier:
    /// an island is *active* when it contains at least one unjustified gate.
    /// Active ids are collected in ascending order (deterministic solve
    /// order, identical to a from-scratch rebuild).
    fn collect_active(&mut self, unjustified: &[GateId]) {
        self.active.clear();
        if self.islands.is_empty() {
            return;
        }
        self.active_gen = bump_generation(&mut self.island_stamp, self.active_gen);
        for gate_id in unjustified {
            let island = self.gate_island[gate_id.index()];
            if island != NONE && self.island_stamp[island as usize] != self.active_gen {
                self.island_stamp[island as usize] = self.active_gen;
                self.active.push(island as usize);
            }
        }
        self.active.sort_unstable();
    }

    fn ensure_order(&mut self, netlist: &Netlist) {
        if self.order_built {
            return;
        }
        self.order_built = true;
        match netlist.combinational_order() {
            Ok(order) => {
                self.order = order;
                self.order_ok = true;
            }
            Err(_) => self.order_ok = false,
        }
    }

    /// Completes the assignment with concrete values into [`Self::values`]
    /// and evaluates the whole circuit; `true` when all requirements hold.
    ///
    /// Several completions of the still-unknown primary-input bits are tried:
    /// all-zero, all-one and a sequence of deterministic pseudo-random
    /// patterns. This covers residual *disequality* requirements (e.g. "the
    /// register must differ from 0") that are not expressible as modular
    /// linear equations.
    fn concretize_and_check(
        &mut self,
        netlist: &Netlist,
        asg: &Assignment,
        requirements: &[(NetId, Bv3)],
    ) -> bool {
        self.ensure_order(netlist);
        if !self.order_ok {
            return false;
        }
        self.values.resize(netlist.net_count(), Bv::zero(1));
        const ATTEMPTS: u64 = 24;
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for attempt in 0..ATTEMPTS {
            for n in netlist.nets() {
                let cube = asg.value(n);
                self.values[n.index()] = match attempt {
                    0 => cube.min_value(),
                    1 => cube.max_value(),
                    _ => {
                        // Fill unknown bits with a pseudo-random pattern
                        // (xorshift), keeping every known bit.
                        let mut v = cube.min_value();
                        for bit in 0..cube.width() {
                            if !cube.bit(bit).is_known() {
                                seed ^= seed << 13;
                                seed ^= seed >> 7;
                                seed ^= seed << 17;
                                v = v.with_bit(bit, seed & 1 == 1);
                            }
                        }
                        v
                    }
                };
            }
            for gate_id in &self.order {
                let gate = netlist.gate(*gate_id);
                self.inputs.clear();
                for n in &gate.inputs {
                    self.inputs.push(self.values[n.index()].clone());
                }
                let out_w = netlist.net_width(gate.output);
                self.values[gate.output.index()] = eval_gate(&gate.kind, &self.inputs, out_w);
            }
            let ok = requirements
                .iter()
                .all(|(net, cube)| cube.matches(&self.values[net.index()]));
            if ok {
                return true;
            }
        }
        false
    }
}

/// Gate kinds participating in arithmetic islands.
fn is_island_gate(kind: &GateKind) -> bool {
    matches!(
        kind,
        GateKind::Add | GateKind::Sub | GateKind::Mul | GateKind::Buf | GateKind::Const(_)
    )
}

/// Transcribes the structural equations of one island into a pre-reduced
/// [`CheckpointedSystem`] template (adders/subtractors/buffers as linear
/// rows, constants as fixed variables, multipliers as product constraints).
/// `gates` must be in ascending id order (canonical template row order).
fn build_island_template(
    netlist: &Netlist,
    width: usize,
    nets: Vec<NetId>,
    gates: &[GateId],
    net_var: &[u32],
) -> CachedIsland {
    let ring = Ring::new(width as u32);
    let mut system = CheckpointedSystem::new(ring, nets.len());
    let mut products = Vec::new();
    let var = |net: &NetId| net_var[net.index()] as usize;
    for gate_id in gates {
        let gate = netlist.gate(*gate_id);
        match &gate.kind {
            GateKind::Add => system.add_sparse_equation(
                &[
                    (var(&gate.inputs[0]), 1),
                    (var(&gate.inputs[1]), 1),
                    (var(&gate.output), ring.neg(1)),
                ],
                0,
            ),
            GateKind::Sub => system.add_sparse_equation(
                &[
                    (var(&gate.inputs[0]), 1),
                    (var(&gate.inputs[1]), ring.neg(1)),
                    (var(&gate.output), ring.neg(1)),
                ],
                0,
            ),
            GateKind::Buf => system.add_sparse_equation(
                &[(var(&gate.inputs[0]), 1), (var(&gate.output), ring.neg(1))],
                0,
            ),
            GateKind::Const(v) => {
                if let Some(value) = v.to_u64() {
                    system.fix_variable(var(&gate.output), value);
                }
            }
            GateKind::Mul => products.push(ProductConstraint {
                a: var(&gate.inputs[0]),
                b: var(&gate.inputs[1]),
                c: var(&gate.output),
            }),
            _ => {}
        }
    }
    CachedIsland {
        width,
        ring,
        nets,
        products,
        system,
    }
}

/// Pushes the current value rows onto the island's checkpointed template and
/// solves: fully-known values become fixed variables, known low-order bits
/// become congruences (x ≡ c (mod 2^k) ⇔ 2^{w-k}·x ≡ 2^{w-k}·c (mod 2^w)).
fn solve_island(
    island: &mut CachedIsland,
    net_var: &[u32],
    asg: &Assignment,
    options: &CheckerOptions,
) -> IslandOutcome {
    let ring = island.ring;
    island.system.push_checkpoint();
    for net in &island.nets {
        let var = net_var[net.index()] as usize;
        let cube = asg.value(*net);
        if let Some(value) = cube.to_bv().and_then(|v| v.to_u64()) {
            island.system.fix_variable(var, value);
            continue;
        }
        let known_low = (0..cube.width())
            .take_while(|i| cube.bit(*i).is_known())
            .count();
        if known_low > 0 {
            let mut low_value = 0u64;
            for i in 0..known_low {
                if cube.bit(i) == Tv::One {
                    low_value |= 1 << i;
                }
            }
            let shift = (island.width - known_low) as u32;
            let factor = if shift >= 64 {
                0
            } else {
                ring.reduce(1u64 << shift)
            };
            if factor != 0 {
                island
                    .system
                    .add_sparse_equation(&[(var, factor)], ring.mul(factor, low_value));
            }
        }
    }
    let mut poll = || options.cancel.is_cancelled();
    let outcome = if island.products.is_empty() {
        match island.system.solve_interruptible(&mut poll) {
            Ok(sol) => IslandOutcome::Assignment(sol.instantiate(&vec![0; sol.num_free()])),
            Err(SolveAbort::Infeasible) => IslandOutcome::Infeasible,
            Err(SolveAbort::Interrupted) => IslandOutcome::Unknown,
        }
    } else {
        match solve_products_checkpointed(
            &mut island.system,
            &island.products,
            options.nonlinear_enumeration_limit,
            &mut poll,
        ) {
            MixedOutcome::Solution(values) => IslandOutcome::Assignment(values),
            MixedOutcome::Infeasible => IslandOutcome::Infeasible,
            MixedOutcome::Unknown => IslandOutcome::Unknown,
        }
    };
    island.system.pop_checkpoint();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    /// One-shot resolution through a fresh context (mirrors the old
    /// free-function API for the focused unit tests below).
    fn resolve_once(
        netlist: &Netlist,
        asg: &mut Assignment,
        requirements: &[(NetId, Bv3)],
        options: &CheckerOptions,
        stats: &mut CheckStats,
    ) -> DatapathOutcome {
        let mut ctx = DatapathContext::new(netlist);
        let mut propagator = Propagator::new(netlist);
        let mut unjustified = Vec::new();
        crate::justify::unjustified_gates(netlist, asg, &mut unjustified);
        ctx.resolve(
            netlist,
            asg,
            &mut propagator,
            &unjustified,
            requirements,
            options,
            None,
            stats,
        )
    }

    #[test]
    fn fully_justified_assignment_concretizes() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b0011")).unwrap();
        asg.refine(b, &cube("4'b0001")).unwrap();
        asg.refine(y, &cube("4'b0100")).unwrap();
        let reqs = vec![(y, cube("4'b0100"))];
        let out = resolve_once(
            &nl,
            &mut asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                assert_eq!(values[y.index()].to_u64(), Some(4));
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn adder_requirement_solved_by_linear_system() {
        // Require y = a + b = 12 with nothing else known: the island solver
        // must produce some (a, b) summing to 12 modulo 16.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b1100")).unwrap();
        let reqs = vec![(y, cube("4'b1100"))];
        let mut stats = CheckStats::default();
        let out = resolve_once(&nl, &mut asg, &reqs, &CheckerOptions::default(), &mut stats);
        match out {
            DatapathOutcome::Consistent(values) => {
                let av = values[a.index()].to_u64().unwrap();
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((av + bv) % 16, 12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
        assert!(stats.arithmetic_calls >= 1);
        assert!(stats.datapath_nanos > 0);
        // The assignment must be restored: speculative refinements are
        // backtracked through the delta trail, never cloned away.
        assert_eq!(asg.value(a), &Bv3::all_x(4));
        assert_eq!(asg.value(b), &Bv3::all_x(4));
    }

    #[test]
    fn chained_adders_with_constants() {
        // y = (a + 3) - b with y required 0 and b required 9 ⇒ a = 6.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let three = nl.constant(&Bv::from_u64(4, 3));
        let s = nl.add(a, three);
        let y = nl.sub(s, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b0000")).unwrap();
        asg.refine(b, &cube("4'b1001")).unwrap();
        let reqs = vec![(y, cube("4'b0000")), (b, cube("4'b1001"))];
        let out = resolve_once(
            &nl,
            &mut asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                assert_eq!(values[a.index()].to_u64(), Some(6));
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_island_detected() {
        // y = a + a = 2a must be even; requiring y = 5 is infeasible.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let y = nl.add(a, a);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b0101")).unwrap();
        let reqs = vec![(y, cube("4'b0101"))];
        let out = resolve_once(
            &nl,
            &mut asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        assert_eq!(out, DatapathOutcome::Infeasible);
    }

    #[test]
    fn multiplier_wraparound_solution_found() {
        // y = 4 · b with y required 12: the modular solver may pick b = 3 or
        // b = 7 (both valid mod 16); an integral solver would only ever see 3.
        let mut nl = Netlist::new("t");
        let b = nl.input("b", 4);
        let four = nl.constant(&Bv::from_u64(4, 4));
        let y = nl.mul(four, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b1100")).unwrap();
        let reqs = vec![(y, cube("4'b1100"))];
        let out = resolve_once(
            &nl,
            &mut asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((4 * bv) % 16, 12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn partial_low_bits_become_congruences() {
        // Require y = a + b = 8 where a's two low bits are already implied to
        // be 2'b11: the solution must respect them.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'bxx11")).unwrap();
        asg.refine(y, &cube("4'b1000")).unwrap();
        let reqs = vec![(y, cube("4'b1000")), (a, cube("4'bxx11"))];
        let out = resolve_once(
            &nl,
            &mut asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                let av = values[a.index()].to_u64().unwrap();
                assert_eq!(av & 0b11, 0b11);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    /// Interleaves island solving with decision-style refinements and
    /// backtracking: the persistent context must return exactly what a fresh
    /// context returns at every step.
    #[test]
    fn incremental_context_matches_scratch_across_interleaved_decisions() {
        // Two independent islands: s = a + b (4-bit), t = c - d (4-bit),
        // plus a multiplier island m = 4·e.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let c = nl.input("c", 4);
        let d = nl.input("d", 4);
        let e = nl.input("e", 4);
        let s = nl.add(a, b);
        let t = nl.sub(c, d);
        let four = nl.constant(&Bv::from_u64(4, 4));
        let m = nl.mul(four, e);
        let options = CheckerOptions::default();

        let mut ctx = DatapathContext::new(&nl);
        let mut propagator = Propagator::new(&nl);
        let mut unjustified = Vec::new();

        // Decision levels: progressively refine requirements, resolving at
        // each level through BOTH the persistent context and a fresh one.
        let levels: Vec<Vec<(NetId, Bv3)>> = vec![
            vec![(s, cube("4'b1100"))],
            vec![(s, cube("4'b1100")), (t, cube("4'b0011"))],
            vec![
                (s, cube("4'b1100")),
                (t, cube("4'b0011")),
                (m, cube("4'b1000")),
            ],
            vec![(s, cube("4'b1100")), (a, cube("4'bxx01"))],
            vec![(m, cube("4'b0101"))], // 4·e = 5 is infeasible (odd)
        ];
        for (level, reqs) in levels.iter().enumerate() {
            let mut asg = Assignment::new(&nl);
            for (net, value) in reqs {
                asg.refine(*net, value).unwrap();
            }
            crate::justify::unjustified_gates(&nl, &asg, &mut unjustified);
            let mut stats = CheckStats::default();
            let incremental = ctx.resolve(
                &nl,
                &mut asg,
                &mut propagator,
                &unjustified,
                reqs,
                &options,
                None,
                &mut stats,
            );
            let mut scratch_ctx = DatapathContext::new(&nl);
            let mut scratch_prop = Propagator::new(&nl);
            let mut scratch_stats = CheckStats::default();
            let scratch = scratch_ctx.resolve(
                &nl,
                &mut asg,
                &mut scratch_prop,
                &unjustified,
                reqs,
                &options,
                None,
                &mut scratch_stats,
            );
            assert_eq!(incremental, scratch, "level {level}");
            assert_eq!(stats.arithmetic_calls, scratch_stats.arithmetic_calls);
        }
    }
}
