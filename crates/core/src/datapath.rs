//! Residual datapath constraint extraction and resolution.
//!
//! Once the control constraints are justified, the remaining requirements sit
//! on arithmetic units in the datapath. Following Section 4 of the paper,
//! the still-unjustified arithmetic gates are grouped into width-homogeneous
//! *islands*, each island is transcribed into a [`MixedSystem`] over ℤ/2ʷℤ
//! (adders and subtractors as linear equations, multipliers as product
//! constraints, partially-known values as low-bit congruences) and solved by
//! the modular arithmetic solver. A feasible closed-form solution is then
//! instantiated, propagated back into the word-level assignment and finally
//! validated by concrete evaluation of the whole (unrolled) circuit.

use crate::assignment::Assignment;
use crate::config::CheckerOptions;
use crate::implication::{ImplicationStats, Propagator};
use crate::justify::unjustified_gates;
use crate::stats::CheckStats;
use std::collections::{HashMap, HashSet, VecDeque};
use wlac_bv::{Bv, Bv3, Tv};
use wlac_modsolve::{MixedOutcome, MixedSystem, Ring};
use wlac_netlist::{GateId, GateKind, NetId, Netlist};
use wlac_sim::eval_gate;

/// Result of trying to discharge the residual datapath constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DatapathOutcome {
    /// A complete concrete assignment (value per net) satisfying every
    /// requirement was constructed.
    Consistent(Vec<Bv>),
    /// Some extracted constraint subset is unsatisfiable in the modular ring;
    /// the current control solution must be abandoned (sound for proving).
    Infeasible,
    /// Neither a solution nor a refutation could be established within the
    /// configured budget.
    Inconclusive,
}

/// An island of width-homogeneous arithmetic gates.
#[derive(Debug)]
struct Island {
    width: usize,
    nets: Vec<NetId>,
    gates: Vec<GateId>,
}

/// Attempts to complete the current (control-justified) assignment into a
/// concrete solution satisfying `requirements`.
pub(crate) fn resolve_datapath(
    netlist: &Netlist,
    asg: &Assignment,
    requirements: &[(NetId, Bv3)],
    options: &CheckerOptions,
    stats: &mut CheckStats,
) -> DatapathOutcome {
    let unjustified = unjustified_gates(netlist, asg);
    if unjustified.is_empty() {
        // Every requirement is already implied by the input cubes: any
        // completion works; use the minimum value of every free input.
        return match concretize_and_check(netlist, asg, requirements) {
            Some(values) => DatapathOutcome::Consistent(values),
            None => DatapathOutcome::Inconclusive,
        };
    }
    if !options.use_arithmetic_solver {
        // Ablation mode: fall back to trying the min/max completions only.
        return match concretize_and_check(netlist, asg, requirements) {
            Some(values) => DatapathOutcome::Consistent(values),
            None => DatapathOutcome::Inconclusive,
        };
    }

    let islands = build_islands(netlist, &unjustified);
    if islands.is_empty() {
        return match concretize_and_check(netlist, asg, requirements) {
            Some(values) => DatapathOutcome::Consistent(values),
            None => DatapathOutcome::Inconclusive,
        };
    }

    let mut refined = asg.clone();
    let mut saw_unknown = false;
    for island in &islands {
        stats.arithmetic_calls += 1;
        match solve_island(netlist, &refined, island, options) {
            IslandOutcome::Assignment(values) => {
                // Merge the island solution into the assignment and re-run
                // implication so the rest of the circuit sees it.
                let mut prop = Propagator::new(netlist);
                let mut imp_stats = ImplicationStats::default();
                for (net, value) in values {
                    let cube = Bv3::from_bv(&value);
                    match refined.refine(net, &cube) {
                        Ok(true) => prop.enqueue_net(netlist, net),
                        Ok(false) => {}
                        Err(_) => return DatapathOutcome::Inconclusive,
                    }
                }
                if prop.run(netlist, &mut refined, &mut imp_stats).is_err() {
                    return DatapathOutcome::Inconclusive;
                }
                stats.implication.gate_evaluations += imp_stats.gate_evaluations;
                stats.implication.refinements += imp_stats.refinements;
            }
            IslandOutcome::Infeasible => return DatapathOutcome::Infeasible,
            IslandOutcome::Unknown => saw_unknown = true,
        }
    }
    match concretize_and_check(netlist, &refined, requirements) {
        Some(values) => DatapathOutcome::Consistent(values),
        None => {
            if saw_unknown {
                DatapathOutcome::Inconclusive
            } else {
                // The islands were individually satisfiable but the sampled
                // combination did not extend to a full solution; without an
                // exhaustive combination search this is inconclusive.
                DatapathOutcome::Inconclusive
            }
        }
    }
}

/// Result of solving one island.
enum IslandOutcome {
    Assignment(Vec<(NetId, Bv)>),
    Infeasible,
    Unknown,
}

/// Gate kinds participating in arithmetic islands.
fn is_island_gate(kind: &GateKind) -> bool {
    matches!(
        kind,
        GateKind::Add | GateKind::Sub | GateKind::Mul | GateKind::Buf | GateKind::Const(_)
    )
}

/// Flood-fills width-homogeneous islands around the unjustified arithmetic gates.
fn build_islands(netlist: &Netlist, unjustified: &[GateId]) -> Vec<Island> {
    let mut assigned: HashSet<GateId> = HashSet::new();
    let mut islands = Vec::new();
    for seed in unjustified {
        let seed_gate = netlist.gate(*seed);
        let width = netlist.net_width(seed_gate.output);
        if !is_island_gate(&seed_gate.kind) || !(2..=64).contains(&width) || assigned.contains(seed)
        {
            continue;
        }
        let mut gates = Vec::new();
        let mut nets: HashSet<NetId> = HashSet::new();
        let mut queue = VecDeque::from([*seed]);
        assigned.insert(*seed);
        while let Some(gate_id) = queue.pop_front() {
            let gate = netlist.gate(gate_id);
            gates.push(gate_id);
            for net in gate.inputs.iter().chain(std::iter::once(&gate.output)) {
                if netlist.net_width(*net) != width || !nets.insert(*net) {
                    continue;
                }
                // Explore neighbouring arithmetic gates of the same width.
                let mut neighbours: Vec<GateId> = netlist.fanouts(*net).to_vec();
                if let Some(driver) = netlist.driver(*net) {
                    neighbours.push(driver);
                }
                for n in neighbours {
                    let g = netlist.gate(n);
                    if is_island_gate(&g.kind)
                        && netlist.net_width(g.output) == width
                        && assigned.insert(n)
                    {
                        queue.push_back(n);
                    }
                }
            }
        }
        let mut net_list: Vec<NetId> = nets.into_iter().collect();
        net_list.sort();
        islands.push(Island {
            width,
            nets: net_list,
            gates,
        });
    }
    islands
}

/// Transcribes one island into a [`MixedSystem`] and solves it.
fn solve_island(
    netlist: &Netlist,
    asg: &Assignment,
    island: &Island,
    options: &CheckerOptions,
) -> IslandOutcome {
    let ring = Ring::new(island.width as u32);
    let index: HashMap<NetId, usize> = island
        .nets
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, i))
        .collect();
    let mut system = MixedSystem::new(ring, island.nets.len());
    system.set_enumeration_limit(options.nonlinear_enumeration_limit);
    let var = |net: &NetId| index[net];
    for gate_id in &island.gates {
        let gate = netlist.gate(*gate_id);
        let mut coeffs = vec![0u64; island.nets.len()];
        match &gate.kind {
            GateKind::Add => {
                coeffs[var(&gate.inputs[0])] = ring.add(coeffs[var(&gate.inputs[0])], 1);
                coeffs[var(&gate.inputs[1])] = ring.add(coeffs[var(&gate.inputs[1])], 1);
                coeffs[var(&gate.output)] = ring.sub(coeffs[var(&gate.output)], 1);
                system.add_equation(&coeffs, 0);
            }
            GateKind::Sub => {
                coeffs[var(&gate.inputs[0])] = ring.add(coeffs[var(&gate.inputs[0])], 1);
                coeffs[var(&gate.inputs[1])] = ring.sub(coeffs[var(&gate.inputs[1])], 1);
                coeffs[var(&gate.output)] = ring.sub(coeffs[var(&gate.output)], 1);
                system.add_equation(&coeffs, 0);
            }
            GateKind::Buf => {
                coeffs[var(&gate.inputs[0])] = 1;
                coeffs[var(&gate.output)] = ring.neg(1);
                system.add_equation(&coeffs, 0);
            }
            GateKind::Const(v) => {
                if let Some(value) = v.to_u64() {
                    system.fix_variable(var(&gate.output), value);
                }
            }
            GateKind::Mul => {
                system.add_product(
                    var(&gate.inputs[0]),
                    var(&gate.inputs[1]),
                    var(&gate.output),
                );
            }
            _ => {}
        }
    }
    // Encode what is already known about the island nets: fully-known values
    // become fixed variables, known low-order bits become congruences
    // (x ≡ c (mod 2^k)  ⇔  2^{w-k}·x ≡ 2^{w-k}·c (mod 2^w)).
    for net in &island.nets {
        let cube = asg.value(*net);
        if let Some(value) = cube.to_bv().and_then(|v| v.to_u64()) {
            system.fix_variable(index[net], value);
            continue;
        }
        let known_low = (0..cube.width())
            .take_while(|i| cube.bit(*i).is_known())
            .count();
        if known_low > 0 {
            let mut low_value = 0u64;
            for i in 0..known_low {
                if cube.bit(i) == Tv::One {
                    low_value |= 1 << i;
                }
            }
            let shift = (island.width - known_low) as u32;
            let factor = if shift >= 64 {
                0
            } else {
                ring.reduce(1u64 << shift)
            };
            if factor != 0 {
                let mut coeffs = vec![0u64; island.nets.len()];
                coeffs[index[net]] = factor;
                system.add_equation(&coeffs, ring.mul(factor, low_value));
            }
        }
    }
    match system.solve_interruptible(&mut || options.cancel.is_cancelled()) {
        MixedOutcome::Solution(values) => IslandOutcome::Assignment(
            island
                .nets
                .iter()
                .zip(values)
                .map(|(net, v)| (*net, Bv::from_u64(island.width, v)))
                .collect(),
        ),
        MixedOutcome::Infeasible => IslandOutcome::Infeasible,
        MixedOutcome::Unknown => IslandOutcome::Unknown,
    }
}

/// Completes the assignment with concrete values and evaluates the whole
/// circuit; returns the concrete values when all requirements hold.
///
/// Several completions of the still-unknown primary-input bits are tried:
/// all-zero, all-one and a sequence of deterministic pseudo-random patterns.
/// This covers residual *disequality* requirements (e.g. "the register must
/// differ from 0") that are not expressible as modular linear equations.
pub(crate) fn concretize_and_check(
    netlist: &Netlist,
    asg: &Assignment,
    requirements: &[(NetId, Bv3)],
) -> Option<Vec<Bv>> {
    let order = netlist.combinational_order().ok()?;
    const ATTEMPTS: u64 = 24;
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    for attempt in 0..ATTEMPTS {
        let mut values: Vec<Bv> = netlist
            .nets()
            .map(|n| {
                let cube = asg.value(n);
                match attempt {
                    0 => cube.min_value(),
                    1 => cube.max_value(),
                    _ => {
                        // Fill unknown bits with a pseudo-random pattern
                        // (xorshift), keeping every known bit.
                        let mut v = cube.min_value();
                        for bit in 0..cube.width() {
                            if !cube.bit(bit).is_known() {
                                seed ^= seed << 13;
                                seed ^= seed >> 7;
                                seed ^= seed << 17;
                                v = v.with_bit(bit, seed & 1 == 1);
                            }
                        }
                        v
                    }
                }
            })
            .collect();
        for gate_id in &order {
            let gate = netlist.gate(*gate_id);
            let inputs: Vec<Bv> = gate
                .inputs
                .iter()
                .map(|n| values[n.index()].clone())
                .collect();
            let out_w = netlist.net_width(gate.output);
            values[gate.output.index()] = eval_gate(&gate.kind, &inputs, out_w);
        }
        let ok = requirements
            .iter()
            .all(|(net, cube)| cube.matches(&values[net.index()]));
        if ok {
            return Some(values);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    #[test]
    fn fully_justified_assignment_concretizes() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b0011")).unwrap();
        asg.refine(b, &cube("4'b0001")).unwrap();
        asg.refine(y, &cube("4'b0100")).unwrap();
        let reqs = vec![(y, cube("4'b0100"))];
        let out = resolve_datapath(
            &nl,
            &asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                assert_eq!(values[y.index()].to_u64(), Some(4));
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn adder_requirement_solved_by_linear_system() {
        // Require y = a + b = 12 with nothing else known: the island solver
        // must produce some (a, b) summing to 12 modulo 16.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b1100")).unwrap();
        let reqs = vec![(y, cube("4'b1100"))];
        let mut stats = CheckStats::default();
        let out = resolve_datapath(&nl, &asg, &reqs, &CheckerOptions::default(), &mut stats);
        match out {
            DatapathOutcome::Consistent(values) => {
                let av = values[a.index()].to_u64().unwrap();
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((av + bv) % 16, 12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
        assert!(stats.arithmetic_calls >= 1);
    }

    #[test]
    fn chained_adders_with_constants() {
        // y = (a + 3) - b with y required 0 and b required 9 ⇒ a = 6.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let three = nl.constant(&Bv::from_u64(4, 3));
        let s = nl.add(a, three);
        let y = nl.sub(s, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b0000")).unwrap();
        asg.refine(b, &cube("4'b1001")).unwrap();
        let reqs = vec![(y, cube("4'b0000")), (b, cube("4'b1001"))];
        let out = resolve_datapath(
            &nl,
            &asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                assert_eq!(values[a.index()].to_u64(), Some(6));
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_island_detected() {
        // y = a + a = 2a must be even; requiring y = 5 is infeasible.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let y = nl.add(a, a);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b0101")).unwrap();
        let reqs = vec![(y, cube("4'b0101"))];
        let out = resolve_datapath(
            &nl,
            &asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        assert_eq!(out, DatapathOutcome::Infeasible);
    }

    #[test]
    fn multiplier_wraparound_solution_found() {
        // y = 4 · b with y required 12: the modular solver may pick b = 3 or
        // b = 7 (both valid mod 16); an integral solver would only ever see 3.
        let mut nl = Netlist::new("t");
        let b = nl.input("b", 4);
        let four = nl.constant(&Bv::from_u64(4, 4));
        let y = nl.mul(four, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(y, &cube("4'b1100")).unwrap();
        let reqs = vec![(y, cube("4'b1100"))];
        let out = resolve_datapath(
            &nl,
            &asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                let bv = values[b.index()].to_u64().unwrap();
                assert_eq!((4 * bv) % 16, 12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn partial_low_bits_become_congruences() {
        // Require y = a + b = 8 where a's two low bits are already implied to
        // be 2'b11: the solution must respect them.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let y = nl.add(a, b);
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'bxx11")).unwrap();
        asg.refine(y, &cube("4'b1000")).unwrap();
        let reqs = vec![(y, cube("4'b1000")), (a, cube("4'bxx11"))];
        let out = resolve_datapath(
            &nl,
            &asg,
            &reqs,
            &CheckerOptions::default(),
            &mut CheckStats::default(),
        );
        match out {
            DatapathOutcome::Consistent(values) => {
                let av = values[a.index()].to_u64().unwrap();
                assert_eq!(av & 0b11, 0b11);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }
}
