//! Assertion properties and monitor construction.
//!
//! Assertion (safety) properties — bus-contention checks, internal don't-care
//! validation, invariant checking — are expressed as a single-bit *monitor*
//! net synthesised into the design, exactly as the paper's
//! property-to-constraint converter turns a linear temporal assertion into
//! value requirements. An [`Property`] then simply states that the monitor
//! must always be 1 (`Always`) or should eventually become 1 (`Eventually`,
//! used for witness generation). Environment constraints (one-hot inputs,
//! fixed control values) are monitors as well, required to be 1 in every
//! time-frame.

use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// The temporal shape of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// The monitor must hold in every reachable time-frame (safety assertion).
    Always,
    /// A witness is sought in which the monitor becomes 1 within the bound.
    Eventually,
}

/// An assertion property over a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// Name used in reports (e.g. `p1`, `p9`).
    pub name: String,
    /// Temporal shape.
    pub kind: PropertyKind,
    /// The single-bit monitor net inside the design's netlist.
    pub monitor: NetId,
}

impl Property {
    /// Creates a safety assertion: `monitor` must always be 1.
    ///
    /// # Panics
    ///
    /// Panics if `monitor` is not a single-bit net of `netlist`.
    pub fn always(netlist: &Netlist, name: impl Into<String>, monitor: NetId) -> Self {
        assert_eq!(netlist.net_width(monitor), 1, "monitor must be single-bit");
        Property {
            name: name.into(),
            kind: PropertyKind::Always,
            monitor,
        }
    }

    /// Creates a witness objective: find an execution making `monitor` 1.
    ///
    /// # Panics
    ///
    /// Panics if `monitor` is not a single-bit net of `netlist`.
    pub fn eventually(netlist: &Netlist, name: impl Into<String>, monitor: NetId) -> Self {
        assert_eq!(netlist.net_width(monitor), 1, "monitor must be single-bit");
        Property {
            name: name.into(),
            kind: PropertyKind::Eventually,
            monitor,
        }
    }
}

/// A design bundled with the property to check and its environment
/// constraints (each environment net must be 1 in every time-frame).
#[derive(Debug, Clone)]
pub struct Verification {
    /// The design, including any synthesised monitor logic.
    pub netlist: Netlist,
    /// The property under check.
    pub property: Property,
    /// Environment constraint monitors (single-bit nets required to be 1 in
    /// every frame), e.g. one-hot input constraints.
    pub environment: Vec<NetId>,
}

impl Verification {
    /// Bundles a netlist with a property and no environment constraints.
    pub fn new(netlist: Netlist, property: Property) -> Self {
        Verification {
            netlist,
            property,
            environment: Vec::new(),
        }
    }

    /// Adds an environment constraint monitor.
    ///
    /// # Panics
    ///
    /// Panics if the net is not single-bit.
    pub fn with_environment(mut self, monitor: NetId) -> Self {
        assert_eq!(
            self.netlist.net_width(monitor),
            1,
            "environment monitor must be single-bit"
        );
        self.environment.push(monitor);
        self
    }
}

/// Monitor-building helpers used by the benchmark circuits and by user code.
///
/// Each helper adds gates to the netlist and returns a single-bit net that is
/// 1 exactly when the described condition holds.
pub mod monitor {
    use super::*;

    /// Monitor that is 1 when **at most one** of `signals` is 1.
    ///
    /// # Panics
    ///
    /// Panics when `signals` is empty or contains a multi-bit net.
    pub fn at_most_one_hot(netlist: &mut Netlist, signals: &[NetId]) -> NetId {
        assert!(!signals.is_empty(), "at_most_one_hot needs signals");
        let mut violation: Option<NetId> = None;
        for (i, a) in signals.iter().enumerate() {
            assert_eq!(
                netlist.net_width(*a),
                1,
                "one-hot signals must be single-bit"
            );
            for b in signals.iter().skip(i + 1) {
                let both = netlist.and2(*a, *b);
                violation = Some(match violation {
                    None => both,
                    Some(v) => netlist.or2(v, both),
                });
            }
        }
        match violation {
            None => netlist.constant_bit(true),
            Some(v) => netlist.not(v),
        }
    }

    /// Monitor that is 1 when **exactly one** of `signals` is 1.
    ///
    /// # Panics
    ///
    /// Panics when `signals` is empty or contains a multi-bit net.
    pub fn exactly_one_hot(netlist: &mut Netlist, signals: &[NetId]) -> NetId {
        let at_most = at_most_one_hot(netlist, signals);
        let mut any = signals[0];
        for s in &signals[1..] {
            any = netlist.or2(any, *s);
        }
        netlist.and2(at_most, any)
    }

    /// Monitor that is 1 when `net` differs from the constant `value`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn never_value(netlist: &mut Netlist, net: NetId, value: &Bv) -> NetId {
        let constant = netlist.constant(value);
        netlist.ne(net, constant)
    }

    /// Monitor that is 1 when `net` equals the constant `value`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn reaches_value(netlist: &mut Netlist, net: NetId, value: &Bv) -> NetId {
        let constant = netlist.constant(value);
        netlist.eq(net, constant)
    }

    /// Bus-contention monitor: 1 when the tri-state bus is safe, i.e. for
    /// every pair of drivers either at most one enable is active or their
    /// data values agree ("consensus", property p11–p13 of the paper).
    ///
    /// # Panics
    ///
    /// Panics when `enables` and `data` differ in length, are empty, or an
    /// enable is not single-bit.
    pub fn bus_contention_free(netlist: &mut Netlist, enables: &[NetId], data: &[NetId]) -> NetId {
        assert_eq!(enables.len(), data.len(), "one enable per data source");
        assert!(!enables.is_empty(), "bus needs at least one driver");
        let mut violation: Option<NetId> = None;
        for i in 0..enables.len() {
            assert_eq!(
                netlist.net_width(enables[i]),
                1,
                "enables must be single-bit"
            );
            for j in i + 1..enables.len() {
                let both = netlist.and2(enables[i], enables[j]);
                let differ = netlist.ne(data[i], data[j]);
                let clash = netlist.and2(both, differ);
                violation = Some(match violation {
                    None => clash,
                    Some(v) => netlist.or2(v, clash),
                });
            }
        }
        match violation {
            None => netlist.constant_bit(true),
            Some(v) => netlist.not(v),
        }
    }

    /// Monitor that is 1 when `implication` holds: `antecedent -> consequent`.
    pub fn implies(netlist: &mut Netlist, antecedent: NetId, consequent: NetId) -> NetId {
        let not_a = netlist.not(antecedent);
        netlist.or2(not_a, consequent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wlac_sim::simulate;

    #[test]
    fn property_constructors_validate_width() {
        let mut nl = Netlist::new("t");
        let ok = nl.input("ok", 1);
        let p = Property::always(&nl, "p1", ok);
        assert_eq!(p.kind, PropertyKind::Always);
        let w = Property::eventually(&nl, "p2", ok);
        assert_eq!(w.kind, PropertyKind::Eventually);
        let v = Verification::new(nl, p).with_environment(ok);
        assert_eq!(v.environment.len(), 1);
    }

    #[test]
    #[should_panic(expected = "single-bit")]
    fn wide_monitor_rejected() {
        let mut nl = Netlist::new("t");
        let wide = nl.input("wide", 4);
        let _ = Property::always(&nl, "bad", wide);
    }

    #[test]
    fn one_hot_monitors_behave() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let c = nl.input("c", 1);
        let at_most = monitor::at_most_one_hot(&mut nl, &[a, b, c]);
        let exactly = monitor::exactly_one_hot(&mut nl, &[a, b, c]);
        nl.mark_output("at_most", at_most);
        nl.mark_output("exactly", exactly);
        for bits in 0..8u64 {
            let inputs: HashMap<_, _> = [
                (a, Bv::from_u64(1, bits & 1)),
                (b, Bv::from_u64(1, (bits >> 1) & 1)),
                (c, Bv::from_u64(1, (bits >> 2) & 1)),
            ]
            .into_iter()
            .collect();
            let run = simulate(&nl, &[], &[inputs]).unwrap();
            let ones = bits.count_ones();
            assert_eq!(
                run.value(0, at_most).to_u64(),
                Some((ones <= 1) as u64),
                "at_most_one_hot for {bits:03b}"
            );
            assert_eq!(
                run.value(0, exactly).to_u64(),
                Some((ones == 1) as u64),
                "exactly_one_hot for {bits:03b}"
            );
        }
    }

    #[test]
    fn bus_contention_monitor_behaviour() {
        let mut nl = Netlist::new("t");
        let e0 = nl.input("e0", 1);
        let e1 = nl.input("e1", 1);
        let d0 = nl.input("d0", 8);
        let d1 = nl.input("d1", 8);
        let ok = monitor::bus_contention_free(&mut nl, &[e0, e1], &[d0, d1]);
        nl.mark_output("ok", ok);
        let run_case = |e0v: u64, e1v: u64, d0v: u64, d1v: u64| {
            let inputs: HashMap<_, _> = [
                (e0, Bv::from_u64(1, e0v)),
                (e1, Bv::from_u64(1, e1v)),
                (d0, Bv::from_u64(8, d0v)),
                (d1, Bv::from_u64(8, d1v)),
            ]
            .into_iter()
            .collect();
            simulate(&nl, &[], &[inputs]).unwrap().value(0, ok).to_u64()
        };
        assert_eq!(run_case(1, 0, 3, 200), Some(1)); // single driver: fine
        assert_eq!(run_case(1, 1, 42, 42), Some(1)); // both drive, consensus
        assert_eq!(run_case(1, 1, 42, 43), Some(0)); // contention
        assert_eq!(run_case(0, 0, 1, 2), Some(1)); // idle bus
    }

    #[test]
    fn value_monitors() {
        let mut nl = Netlist::new("t");
        let x = nl.input("x", 5);
        let never13 = monitor::never_value(&mut nl, x, &Bv::from_u64(5, 13));
        let is13 = monitor::reaches_value(&mut nl, x, &Bv::from_u64(5, 13));
        nl.mark_output("never13", never13);
        nl.mark_output("is13", is13);
        for v in [0u64, 12, 13, 31] {
            let inputs: HashMap<_, _> = [(x, Bv::from_u64(5, v))].into_iter().collect();
            let run = simulate(&nl, &[], &[inputs]).unwrap();
            assert_eq!(run.value(0, never13).to_u64(), Some((v != 13) as u64));
            assert_eq!(run.value(0, is13).to_u64(), Some((v == 13) as u64));
        }
    }

    #[test]
    fn implies_monitor() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let imp = monitor::implies(&mut nl, a, b);
        nl.mark_output("imp", imp);
        for (av, bv, expect) in [(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 1)] {
            let inputs: HashMap<_, _> = [(a, Bv::from_u64(1, av)), (b, Bv::from_u64(1, bv))]
                .into_iter()
                .collect();
            let run = simulate(&nl, &[], &[inputs]).unwrap();
            assert_eq!(run.value(0, imp).to_u64(), Some(expect));
        }
    }
}
