//! Word-level value assignment with a backtrackable delta trail.
//!
//! Unlike bit-level ATPG, a word-level signal can be implied several times
//! (each time refining more bits), so backtracking cannot simply reset nets
//! to `x` — it must restore the *previous partially-implied value*
//! (Section 3.1 of the paper). The [`Assignment`] keeps an undo trail for
//! exactly this purpose; instead of a full copy of the previous cube, each
//! trail entry records only one plane *word* a refinement overwrote (the
//! delta), so refining one bit of a wide bus costs a single 24-byte entry
//! and no heap allocation.

use wlac_bv::Bv3;
use wlac_netlist::{NetId, Netlist};

/// Conflict raised when a refinement contradicts the current assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The net on which the contradiction was detected.
    pub net: NetId,
}

/// One overwritten plane word: enough to restore a net's previous value when
/// popped in reverse order.
#[derive(Debug, Clone, Copy)]
struct TrailEntry {
    net: NetId,
    word: u32,
    known: u64,
    value: u64,
}

/// The current three-valued value of every net plus a word-delta undo trail.
#[derive(Debug, Clone)]
pub struct Assignment {
    values: Vec<Bv3>,
    trail: Vec<TrailEntry>,
    peak_trail: usize,
    /// Nets whose value changed (by refinement *or* backtracking) since the
    /// last [`Assignment::drain_dirty`]; may contain duplicates. Only filled
    /// when dirty tracking is enabled — the list backs the incremental
    /// unjustified-gate worklist, and untracked users (simulation replay,
    /// standalone implication) should not pay for it.
    dirty: Vec<NetId>,
    track_dirty: bool,
}

impl Assignment {
    /// Creates an all-unknown assignment for the given netlist.
    pub fn new(netlist: &Netlist) -> Self {
        Assignment {
            values: netlist
                .nets()
                .map(|n| Bv3::all_x(netlist.net_width(n)))
                .collect(),
            trail: Vec::new(),
            peak_trail: 0,
            dirty: Vec::new(),
            track_dirty: false,
        }
    }

    /// Starts recording every net-value change (refinements and backtrack
    /// restores) for [`Assignment::drain_dirty`]. The recording vector is
    /// reused across drains, so steady-state tracking allocates nothing once
    /// it has reached its peak.
    pub fn enable_dirty_tracking(&mut self) {
        self.track_dirty = true;
    }

    /// `true` when change tracking is on.
    pub fn dirty_tracking(&self) -> bool {
        self.track_dirty
    }

    /// Drains the nets changed since the last drain (with possible
    /// duplicates). Empty — and meaningless — while tracking is disabled.
    pub fn drain_dirty(&mut self) -> std::vec::Drain<'_, NetId> {
        self.dirty.drain(..)
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> &Bv3 {
        &self.values[net.index()]
    }

    /// Refines the value of `net` with `new`, recording the overwritten plane
    /// words on the trail. Returns `Ok(true)` when at least one bit became
    /// newly known.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] when a known bit of `new` contradicts the current
    /// value; the assignment is left unchanged in that case.
    pub fn refine(&mut self, net: NetId, new: &Bv3) -> Result<bool, Conflict> {
        let trail = &mut self.trail;
        match self.values[net.index()].refine_recording(new, |word, known, value| {
            trail.push(TrailEntry {
                net,
                word: word as u32,
                known,
                value,
            });
        }) {
            Ok(changed) => {
                self.peak_trail = self.peak_trail.max(self.trail.len());
                if changed && self.track_dirty {
                    self.dirty.push(net);
                }
                Ok(changed)
            }
            Err(_) => Err(Conflict { net }),
        }
    }

    /// Current length of the trail; use with [`Assignment::backtrack_to`].
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Restores every net to its value at the time `mark` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is larger than the current trail.
    pub fn backtrack_to(&mut self, mark: usize) {
        assert!(mark <= self.trail.len(), "mark beyond trail");
        while self.trail.len() > mark {
            let entry = self.trail.pop().expect("non-empty trail");
            self.values[entry.net.index()].restore_word(
                entry.word as usize,
                entry.known,
                entry.value,
            );
            if self.track_dirty {
                self.dirty.push(entry.net);
            }
        }
    }

    /// Total number of known bits across all nets.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn known_bits(&self) -> usize {
        self.values.iter().map(|v| v.count_known()).sum()
    }

    /// Largest trail length observed so far (used for memory reporting).
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn peak_trail(&self) -> usize {
        self.peak_trail
    }

    /// Approximate number of bytes held by the assignment and its trail at
    /// its peak, used to reproduce the paper's memory column.
    pub fn peak_memory_bytes(&self) -> usize {
        let cube_bytes = |c: &Bv3| 2 * c.width().div_ceil(64).max(2) * 8 + 16;
        let values: usize = self.values.iter().map(cube_bytes).sum();
        values + self.peak_trail * std::mem::size_of::<TrailEntry>()
    }

    /// Number of nets tracked.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no nets are tracked.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_bv::Tv;
    use wlac_netlist::Netlist;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn simple() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        (nl, a, b)
    }

    #[test]
    fn refine_and_backtrack_restores_partial_values() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b1xxx")).unwrap();
        let mark = asg.mark();
        asg.refine(a, &cube("4'bx0x1")).unwrap();
        assert_eq!(asg.value(a), &cube("4'b10x1"));
        asg.backtrack_to(mark);
        // Backtracking restores the *partially implied* value, not all-x.
        assert_eq!(asg.value(a), &cube("4'b1xxx"));
    }

    #[test]
    fn conflict_leaves_assignment_unchanged() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b10xx")).unwrap();
        let err = asg.refine(a, &cube("4'b01xx")).unwrap_err();
        assert_eq!(err.net, a);
        assert_eq!(asg.value(a), &cube("4'b10xx"));
    }

    #[test]
    fn no_change_is_reported() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        assert!(asg.refine(a, &cube("4'b1xxx")).unwrap());
        assert!(!asg.refine(a, &cube("4'b1xxx")).unwrap());
        assert!(!asg.refine(a, &Bv3::all_x(4)).unwrap());
        assert_eq!(asg.mark(), 1);
    }

    #[test]
    fn known_bits_and_memory_accounting() {
        let (nl, a, b) = simple();
        let mut asg = Assignment::new(&nl);
        assert_eq!(asg.known_bits(), 0);
        asg.refine(a, &cube("4'b1010")).unwrap();
        asg.refine(b, &cube("4'bxx11")).unwrap();
        assert_eq!(asg.known_bits(), 6);
        assert!(asg.peak_memory_bytes() > 0);
        assert_eq!(asg.peak_trail(), 2);
        assert_eq!(asg.len(), nl.net_count());
        assert!(!asg.is_empty());
    }

    #[test]
    fn interleaved_multi_refinement_backtracking() {
        // Regression test for the delta trail: two nets are each refined
        // several times (including refinements touching several words of a
        // wide bus) with their refinements interleaved, then restored level
        // by level. Every mark must restore the exact partially-implied
        // values of both nets, not just the latest one.
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let w = nl.input("w", 130); // three words: exercises multi-word deltas
        let mut asg = Assignment::new(&nl);

        let m0 = asg.mark();
        asg.refine(a, &cube("4'b1xxx")).unwrap();
        let mut w_lo = Bv3::all_x(130);
        w_lo.set_bit(0, Tv::One);
        asg.refine(w, &w_lo).unwrap();

        let m1 = asg.mark();
        let mut w_mid_hi = Bv3::all_x(130);
        w_mid_hi.set_bit(64, Tv::Zero); // second word
        w_mid_hi.set_bit(129, Tv::One); // third word — same refinement
        asg.refine(w, &w_mid_hi).unwrap();
        asg.refine(a, &cube("4'bxx0x")).unwrap();

        let m2 = asg.mark();
        asg.refine(a, &cube("4'bxxx1")).unwrap();
        let mut w_more = Bv3::all_x(130);
        w_more.set_bit(1, Tv::Zero); // first word again, at a deeper level
        asg.refine(w, &w_more).unwrap();

        assert_eq!(asg.value(a), &cube("4'b1x01"));
        assert_eq!(asg.value(w).bit(0), Tv::One);
        assert_eq!(asg.value(w).bit(1), Tv::Zero);
        assert_eq!(asg.value(w).bit(64), Tv::Zero);
        assert_eq!(asg.value(w).bit(129), Tv::One);

        asg.backtrack_to(m2);
        assert_eq!(asg.value(a), &cube("4'b1x0x"));
        assert_eq!(asg.value(w).bit(0), Tv::One);
        assert_eq!(asg.value(w).bit(1), Tv::X);
        assert_eq!(asg.value(w).bit(64), Tv::Zero);
        assert_eq!(asg.value(w).bit(129), Tv::One);

        asg.backtrack_to(m1);
        assert_eq!(asg.value(a), &cube("4'b1xxx"));
        assert_eq!(asg.value(w).bit(0), Tv::One);
        assert_eq!(asg.value(w).bit(64), Tv::X);
        assert_eq!(asg.value(w).bit(129), Tv::X);

        asg.backtrack_to(m0);
        assert_eq!(asg.value(a), &Bv3::all_x(4));
        assert!(asg.value(w).is_all_x());
    }

    #[test]
    fn nested_backtracking() {
        let (nl, a, b) = simple();
        let mut asg = Assignment::new(&nl);
        let m0 = asg.mark();
        asg.refine(a, &cube("4'b1xxx")).unwrap();
        let m1 = asg.mark();
        asg.refine(b, &cube("4'b0000")).unwrap();
        asg.refine(a, &cube("4'b11xx")).unwrap();
        asg.backtrack_to(m1);
        assert_eq!(asg.value(a), &cube("4'b1xxx"));
        assert_eq!(asg.value(b), &Bv3::all_x(4));
        asg.backtrack_to(m0);
        assert_eq!(asg.value(a), &Bv3::all_x(4));
    }
}
