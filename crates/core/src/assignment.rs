//! Word-level value assignment with a backtrackable trail.
//!
//! Unlike bit-level ATPG, a word-level signal can be implied several times
//! (each time refining more bits), so backtracking cannot simply reset nets
//! to `x` — it must restore the *previous partially-implied value*
//! (Section 3.1 of the paper). The [`Assignment`] keeps a trail of previous
//! cube values for exactly this purpose.

use wlac_bv::Bv3;
use wlac_netlist::{NetId, Netlist};

/// Conflict raised when a refinement contradicts the current assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// The net on which the contradiction was detected.
    pub net: NetId,
}

/// The current three-valued value of every net plus an undo trail.
#[derive(Debug, Clone)]
pub struct Assignment {
    values: Vec<Bv3>,
    trail: Vec<(NetId, Bv3)>,
    peak_trail: usize,
}

impl Assignment {
    /// Creates an all-unknown assignment for the given netlist.
    pub fn new(netlist: &Netlist) -> Self {
        Assignment {
            values: netlist
                .nets()
                .map(|n| Bv3::all_x(netlist.net_width(n)))
                .collect(),
            trail: Vec::new(),
            peak_trail: 0,
        }
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> &Bv3 {
        &self.values[net.index()]
    }

    /// Refines the value of `net` with `new`, recording the previous value on
    /// the trail. Returns `Ok(true)` when at least one bit became newly
    /// known.
    ///
    /// # Errors
    ///
    /// Returns [`Conflict`] when a known bit of `new` contradicts the current
    /// value; the assignment is left unchanged in that case.
    pub fn refine(&mut self, net: NetId, new: &Bv3) -> Result<bool, Conflict> {
        let current = &self.values[net.index()];
        if current.covers(new) && new.covers(current) {
            return Ok(false);
        }
        let mut merged = current.clone();
        match merged.refine(new) {
            Ok(true) => {
                self.trail.push((net, self.values[net.index()].clone()));
                self.peak_trail = self.peak_trail.max(self.trail.len());
                self.values[net.index()] = merged;
                Ok(true)
            }
            Ok(false) => Ok(false),
            Err(_) => Err(Conflict { net }),
        }
    }

    /// Current length of the trail; use with [`Assignment::backtrack_to`].
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Restores every net to its value at the time `mark` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is larger than the current trail.
    pub fn backtrack_to(&mut self, mark: usize) {
        assert!(mark <= self.trail.len(), "mark beyond trail");
        while self.trail.len() > mark {
            let (net, previous) = self.trail.pop().expect("non-empty trail");
            self.values[net.index()] = previous;
        }
    }

    /// Total number of known bits across all nets.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn known_bits(&self) -> usize {
        self.values.iter().map(|v| v.count_known()).sum()
    }

    /// Largest trail length observed so far (used for memory reporting).
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn peak_trail(&self) -> usize {
        self.peak_trail
    }

    /// Approximate number of bytes held by the assignment and its trail at
    /// its peak, used to reproduce the paper's memory column.
    pub fn peak_memory_bytes(&self) -> usize {
        let cube_bytes = |c: &Bv3| 2 * c.width().div_ceil(64) * 8 + 16;
        let values: usize = self.values.iter().map(cube_bytes).sum();
        let avg = if self.values.is_empty() {
            0
        } else {
            values / self.values.len()
        };
        values + self.peak_trail * (avg + 8)
    }

    /// Number of nets tracked.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no nets are tracked.
    #[allow(dead_code)] // exercised by tests and useful for diagnostics
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_netlist::Netlist;

    fn cube(s: &str) -> Bv3 {
        s.parse().unwrap()
    }

    fn simple() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        (nl, a, b)
    }

    #[test]
    fn refine_and_backtrack_restores_partial_values() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b1xxx")).unwrap();
        let mark = asg.mark();
        asg.refine(a, &cube("4'bx0x1")).unwrap();
        assert_eq!(asg.value(a), &cube("4'b10x1"));
        asg.backtrack_to(mark);
        // Backtracking restores the *partially implied* value, not all-x.
        assert_eq!(asg.value(a), &cube("4'b1xxx"));
    }

    #[test]
    fn conflict_leaves_assignment_unchanged() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        asg.refine(a, &cube("4'b10xx")).unwrap();
        let err = asg.refine(a, &cube("4'b01xx")).unwrap_err();
        assert_eq!(err.net, a);
        assert_eq!(asg.value(a), &cube("4'b10xx"));
    }

    #[test]
    fn no_change_is_reported() {
        let (nl, a, _) = simple();
        let mut asg = Assignment::new(&nl);
        assert!(asg.refine(a, &cube("4'b1xxx")).unwrap());
        assert!(!asg.refine(a, &cube("4'b1xxx")).unwrap());
        assert!(!asg.refine(a, &Bv3::all_x(4)).unwrap());
        assert_eq!(asg.mark(), 1);
    }

    #[test]
    fn known_bits_and_memory_accounting() {
        let (nl, a, b) = simple();
        let mut asg = Assignment::new(&nl);
        assert_eq!(asg.known_bits(), 0);
        asg.refine(a, &cube("4'b1010")).unwrap();
        asg.refine(b, &cube("4'bxx11")).unwrap();
        assert_eq!(asg.known_bits(), 6);
        assert!(asg.peak_memory_bytes() > 0);
        assert_eq!(asg.peak_trail(), 2);
        assert_eq!(asg.len(), nl.net_count());
        assert!(!asg.is_empty());
    }

    #[test]
    fn nested_backtracking() {
        let (nl, a, b) = simple();
        let mut asg = Assignment::new(&nl);
        let m0 = asg.mark();
        asg.refine(a, &cube("4'b1xxx")).unwrap();
        let m1 = asg.mark();
        asg.refine(b, &cube("4'b0000")).unwrap();
        asg.refine(a, &cube("4'b11xx")).unwrap();
        asg.backtrack_to(m1);
        assert_eq!(asg.value(a), &cube("4'b1xxx"));
        assert_eq!(asg.value(b), &Bv3::all_x(4));
        asg.backtrack_to(m0);
        assert_eq!(asg.value(a), &Bv3::all_x(4));
    }
}
