//! Enforces the hot-path allocation contract: steady-state word-level
//! implication (refine → propagate to fixed point → backtrack) performs
//! **zero heap allocations** for nets up to 128 bits wide.
//!
//! A counting global allocator wraps the system allocator; after one warm-up
//! cycle has grown every reusable buffer (propagator buckets, proposal
//! scratch, assignment trail), one hundred further decision/backtrack cycles
//! must not allocate at all.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test in
//! the same process can perturb the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wlac_atpg::ImplicationEngine;
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{NetId, Netlist};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A mixed control/datapath circuit using only ≤128-bit nets: adders,
/// subtractor, mux, comparators, wide Boolean gates, slices, concat, zext
/// and reductions — every implication rule the hot loop exercises.
fn build_circuit() -> (Netlist, Vec<(NetId, Bv3)>) {
    let mut nl = Netlist::new("hot_path");
    let a = nl.input("a", 64);
    let b = nl.input("b", 64);
    let sel = nl.input("sel", 1);
    let sum = nl.add(a, b);
    let diff = nl.sub(a, b);
    let m = nl.mux(sel, sum, diff);
    let limit = nl.constant(&Bv::from_u64(64, 1 << 40));
    let below = nl.lt(m, limit);

    let wa = nl.input("wa", 128);
    let wb = nl.input("wb", 128);
    let wand = nl.and2(wa, wb);
    let wor = nl.or2(wa, wb);
    let wx = nl.xor2(wand, wor);
    let low = nl.slice(wx, 0, 64);
    let high = nl.slice(wx, 64, 64);
    let mixed = nl.xor2(low, high);
    let any = nl.reduce_or(mixed);
    let ok = nl.and2(below, any);
    nl.mark_output("ok", ok);

    // Seeds chosen to drive forward and backward implication without ever
    // conflicting: the requirement on `ok`, partial operand knowledge, and a
    // known select.
    let mut wa_seed = Bv3::all_x(128);
    for i in 0..32 {
        wa_seed.set_bit(i, Tv::from_bool(i % 3 == 0));
    }
    wa_seed.set_bit(127, Tv::One);
    let mut a_seed = Bv3::all_x(64);
    for i in 20..36 {
        a_seed.set_bit(i, Tv::from_bool(i % 2 == 0));
    }
    let seeds = vec![
        (ok, Bv3::from_tv(Tv::One)),
        (sel, Bv3::from_tv(Tv::One)),
        (a, a_seed),
        (wa, wa_seed),
    ];
    (nl, seeds)
}

fn cycle(engine: &mut ImplicationEngine, netlist: &Netlist, seeds: &[(NetId, Bv3)]) {
    let mark = engine.mark();
    for (net, cube) in seeds {
        engine
            .assume(netlist, *net, cube)
            .expect("seeds are conflict-free");
    }
    engine.propagate(netlist).expect("propagation succeeds");
    engine.backtrack_to(mark);
}

#[test]
fn steady_state_propagation_allocates_nothing_for_narrow_nets() {
    let (netlist, seeds) = build_circuit();
    let mut engine = ImplicationEngine::new(&netlist);

    // Warm-up: grows the trail, the propagator buckets and the proposal
    // scratch to their steady-state capacities.
    cycle(&mut engine, &netlist, &seeds);
    cycle(&mut engine, &netlist, &seeds);

    let evals_before = engine.stats().gate_evaluations;
    let before = allocs();
    for _ in 0..100 {
        cycle(&mut engine, &netlist, &seeds);
    }
    let delta = allocs() - before;
    let evals = engine.stats().gate_evaluations - evals_before;
    assert!(
        evals >= 1_000,
        "the workload must exercise the hot loop (got {evals} gate evaluations)"
    );
    assert_eq!(
        delta, 0,
        "steady-state propagation must not allocate (saw {delta} allocations \
         over {evals} gate evaluations)"
    );
}
