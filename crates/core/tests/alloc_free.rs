//! Enforces the hot-path allocation contract:
//!
//! 1. steady-state word-level implication (refine → propagate to fixed point
//!    → backtrack) performs **zero heap allocations** for nets up to 128 bits
//!    wide;
//! 2. steady-state *decision search* — seeding, implication, justification
//!    frontiers, decision cuts, bias ordering, chronological backtracking,
//!    all the way to an exhaustive Unsat — also performs **zero heap
//!    allocations** on a control-only circuit (the PR 3 win: the residual
//!    ~1.2 allocs/gate-eval of per-decision bookkeeping are gone);
//! 3. the satisfiable leaf (datapath concretization + result extraction)
//!    stays allocation-*light*: a small constant per search, not per gate.
//!
//! A counting global allocator wraps the system allocator; after warm-up
//! cycles have grown every reusable buffer, further cycles must not allocate.
//!
//! This file intentionally holds a single `#[test]` (running the phases
//! sequentially) so no concurrent test in the same process can perturb the
//! allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wlac_atpg::{
    CheckStats, CheckerOptions, Estg, ImplicationEngine, SearchContext, SearchGoal, SearchOutcome,
};
use wlac_bv::{Bv, Bv3, Tv};
use wlac_netlist::{NetId, Netlist};
use wlac_telemetry::{ProgressCell, ProgressHandle};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `work` several times and returns the *minimum* allocation delta.
///
/// The counter is process-global, so rare out-of-thread allocations (libtest
/// bookkeeping) can leak into a measurement window. The workloads under test
/// are deterministic: a real regression allocates in **every** attempt and
/// survives the minimum, while one-off harness noise does not.
fn min_alloc_delta(attempts: usize, mut work: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts {
        let before = allocs();
        work();
        best = best.min(allocs() - before);
    }
    best
}

/// A mixed control/datapath circuit using only ≤128-bit nets: adders,
/// subtractor, mux, comparators, wide Boolean gates, slices, concat, zext
/// and reductions — every implication rule the hot loop exercises.
fn build_circuit() -> (Netlist, Vec<(NetId, Bv3)>) {
    let mut nl = Netlist::new("hot_path");
    let a = nl.input("a", 64);
    let b = nl.input("b", 64);
    let sel = nl.input("sel", 1);
    let sum = nl.add(a, b);
    let diff = nl.sub(a, b);
    let m = nl.mux(sel, sum, diff);
    let limit = nl.constant(&Bv::from_u64(64, 1 << 40));
    let below = nl.lt(m, limit);

    let wa = nl.input("wa", 128);
    let wb = nl.input("wb", 128);
    let wand = nl.and2(wa, wb);
    let wor = nl.or2(wa, wb);
    let wx = nl.xor2(wand, wor);
    let low = nl.slice(wx, 0, 64);
    let high = nl.slice(wx, 64, 64);
    let mixed = nl.xor2(low, high);
    let any = nl.reduce_or(mixed);
    let ok = nl.and2(below, any);
    nl.mark_output("ok", ok);

    // Seeds chosen to drive forward and backward implication without ever
    // conflicting: the requirement on `ok`, partial operand knowledge, and a
    // known select.
    let mut wa_seed = Bv3::all_x(128);
    for i in 0..32 {
        wa_seed.set_bit(i, Tv::from_bool(i % 3 == 0));
    }
    wa_seed.set_bit(127, Tv::One);
    let mut a_seed = Bv3::all_x(64);
    for i in 20..36 {
        a_seed.set_bit(i, Tv::from_bool(i % 2 == 0));
    }
    let seeds = vec![
        (ok, Bv3::from_tv(Tv::One)),
        (sel, Bv3::from_tv(Tv::One)),
        (a, a_seed),
        (wa, wa_seed),
    ];
    (nl, seeds)
}

/// A control-only circuit whose requirements are unsatisfiable but force an
/// exhaustive branch-and-bound over the primary inputs: two XOR-parity trees
/// over the same eight inputs, one required odd and one required even.
/// Every branch dies in an implication conflict near the leaves, so one
/// search performs hundreds of decisions and backtracks without ever leaving
/// the control domain.
fn build_parity_circuit() -> (Netlist, Vec<(NetId, Bv3)>) {
    let mut nl = Netlist::new("parity_unsat");
    let inputs: Vec<NetId> = (0..8).map(|i| nl.input(format!("x{i}"), 1)).collect();
    let chain = |nl: &mut Netlist, nets: &[NetId]| {
        let mut acc = nets[0];
        for n in &nets[1..] {
            acc = nl.xor2(acc, *n);
        }
        acc
    };
    let odd = chain(&mut nl, &inputs);
    let even = chain(&mut nl, &inputs);
    nl.mark_output("odd", odd);
    nl.mark_output("even", even);
    let reqs = vec![(odd, Bv3::from_tv(Tv::One)), (even, Bv3::from_tv(Tv::Zero))];
    (nl, reqs)
}

/// A small satisfiable control circuit: (a & b) | c required 1.
fn build_sat_circuit() -> (Netlist, Vec<(NetId, Bv3)>) {
    let mut nl = Netlist::new("sat_leaf");
    let a = nl.input("a", 1);
    let b = nl.input("b", 1);
    let c = nl.input("c", 1);
    let ab = nl.and2(a, b);
    let y = nl.or2(ab, c);
    nl.mark_output("y", y);
    (nl, vec![(y, Bv3::from_tv(Tv::One))])
}

fn cycle(engine: &mut ImplicationEngine, netlist: &Netlist, seeds: &[(NetId, Bv3)]) {
    let mark = engine.mark();
    for (net, cube) in seeds {
        engine
            .assume(netlist, *net, cube)
            .expect("seeds are conflict-free");
    }
    engine.propagate(netlist).expect("propagation succeeds");
    engine.backtrack_to(mark);
}

/// Phase 1: refine → propagate → backtrack cycles allocate nothing.
fn propagation_phase() {
    let (netlist, seeds) = build_circuit();
    let mut engine = ImplicationEngine::new(&netlist);

    // Warm-up: grows the trail, the propagator buckets and the proposal
    // scratch to their steady-state capacities.
    cycle(&mut engine, &netlist, &seeds);
    cycle(&mut engine, &netlist, &seeds);

    let evals_before = engine.stats().gate_evaluations;
    let delta = min_alloc_delta(3, || {
        for _ in 0..100 {
            cycle(&mut engine, &netlist, &seeds);
        }
    });
    let evals = (engine.stats().gate_evaluations - evals_before) / 3;
    assert!(
        evals >= 1_000,
        "the workload must exercise the hot loop (got {evals} gate evaluations)"
    );
    assert_eq!(
        delta, 0,
        "steady-state propagation must not allocate (saw {delta} allocations \
         over {evals} gate evaluations)"
    );
}

/// Phase 2: whole searches — decisions, cuts, bias ordering, backtracking,
/// exhaustion — allocate nothing once the context is warm.
fn decision_search_phase() {
    let (netlist, reqs) = build_parity_circuit();
    let mut ctx = SearchContext::new(&netlist);
    let mut estg = Estg::new();
    // ESTG conflict history evolves across searches and reshuffles the
    // decision order; disabling its *ordering influence* makes every search
    // identical so two warm-up runs provably size every buffer. Conflicts
    // are still recorded into the (bounded, warmed) ESTG map.
    let options = CheckerOptions {
        use_estg: false,
        ..CheckerOptions::default()
    };
    let deadline = Instant::now() + Duration::from_secs(120);

    let search = |ctx: &mut SearchContext, estg: &mut Estg, stats: &mut CheckStats| {
        let outcome = ctx.search(
            &netlist,
            &options,
            SearchGoal::Prove,
            &reqs,
            estg,
            deadline,
            stats,
        );
        assert_eq!(outcome, SearchOutcome::Unsat);
    };

    // Warm-up: grows every reusable buffer (trail, stack, frontiers, ESTG).
    for _ in 0..2 {
        search(&mut ctx, &mut estg, &mut CheckStats::default());
    }

    let mut stats = CheckStats::default();
    let delta = min_alloc_delta(3, || {
        for _ in 0..20 {
            search(&mut ctx, &mut estg, &mut stats);
        }
    });
    assert!(
        stats.decisions >= 1_000 && stats.backtracks >= 1_000,
        "the workload must exercise the decision loop (got {} decisions, {} backtracks)",
        stats.decisions,
        stats.backtracks
    );
    assert_eq!(
        delta, 0,
        "steady-state decision search must not allocate (saw {delta} allocations \
         over {} decisions)",
        stats.decisions
    );
}

/// Phase 2b: the same exhaustive searches with a live progress cell
/// attached still allocate nothing — probe publication is a seqlock write
/// into pre-allocated atomics, so live observability never costs the
/// steady-state search path a single allocation.
fn probed_decision_search_phase() {
    let (netlist, reqs) = build_parity_circuit();
    let mut ctx = SearchContext::new(&netlist);
    let mut estg = Estg::new();
    let cell = Arc::new(ProgressCell::new());
    let options = CheckerOptions {
        use_estg: false,
        ..CheckerOptions::default()
    }
    .with_progress(ProgressHandle::to(Arc::clone(&cell)));
    let deadline = Instant::now() + Duration::from_secs(120);

    let search = |ctx: &mut SearchContext, estg: &mut Estg, stats: &mut CheckStats| {
        let outcome = ctx.search(
            &netlist,
            &options,
            SearchGoal::Prove,
            &reqs,
            estg,
            deadline,
            stats,
        );
        assert_eq!(outcome, SearchOutcome::Unsat);
    };

    for _ in 0..2 {
        search(&mut ctx, &mut estg, &mut CheckStats::default());
    }

    let mut stats = CheckStats::default();
    let delta = min_alloc_delta(3, || {
        for _ in 0..20 {
            search(&mut ctx, &mut estg, &mut stats);
        }
    });
    let probe = cell.snapshot();
    assert!(
        probe.probes >= 1 && probe.decisions >= 1_000,
        "the workload must actually publish probes (got {} probes, {} decisions)",
        probe.probes,
        probe.decisions
    );
    assert_eq!(
        delta, 0,
        "probed steady-state decision search must not allocate (saw {delta} \
         allocations over {} decisions, {} probes)",
        stats.decisions, probe.probes
    );
}

/// Phase 3: satisfiable searches allocate only the result payload — a small
/// constant per search, not per decision or per gate.
fn sat_leaf_phase() {
    let (netlist, reqs) = build_sat_circuit();
    let mut ctx = SearchContext::new(&netlist);
    let mut estg = Estg::new();
    let options = CheckerOptions::default();
    let deadline = Instant::now() + Duration::from_secs(120);

    for _ in 0..2 {
        let outcome = ctx.search(
            &netlist,
            &options,
            SearchGoal::Witness,
            &reqs,
            &mut estg,
            deadline,
            &mut CheckStats::default(),
        );
        assert!(matches!(outcome, SearchOutcome::Sat(_)));
    }

    const RUNS: u64 = 100;
    let before = allocs();
    for _ in 0..RUNS {
        let outcome = ctx.search(
            &netlist,
            &options,
            SearchGoal::Witness,
            &reqs,
            &mut estg,
            deadline,
            &mut CheckStats::default(),
        );
        assert!(matches!(outcome, SearchOutcome::Sat(_)));
    }
    let delta = allocs() - before;
    assert!(
        delta <= 4 * RUNS,
        "the satisfiable leaf must stay allocation-light \
         (saw {delta} allocations over {RUNS} searches)"
    );
}

#[test]
fn steady_state_hot_paths_allocate_nothing_for_narrow_nets() {
    propagation_phase();
    decision_search_phase();
    probed_decision_search_phase();
    sat_leaf_phase();
}
