//! Differential proof that tracing is pure observability: running the exact
//! same check with `CheckerOptions::trace` on and off must produce
//! byte-identical verdicts and the same decision sequence (every search
//! counter equal at every level of aggregation). The traced run must
//! additionally produce a phase breakdown that partitions `elapsed` and span
//! events describing the decisions taken.

use std::sync::Arc;
use wlac_atpg::{AssertionChecker, CheckerOptions, Property, TraceSink, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};
use wlac_telemetry::Tracer;

/// A 4-bit counter wrapping at `wrap_at`, monitored by `q < limit`.
fn bounded_counter(limit: u64, wrap_at: u64) -> (Netlist, NetId) {
    let mut nl = Netlist::new("bounded_counter");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let plus = nl.add(q, one);
    let wrap = nl.constant(&Bv::from_u64(4, wrap_at));
    let at_wrap = nl.eq(q, wrap);
    let zero = nl.constant(&Bv::zero(4));
    let next = nl.mux(at_wrap, zero, plus);
    nl.connect_dff_data(ff, next);
    let limit_net = nl.constant(&Bv::from_u64(4, limit));
    let ok = nl.lt(q, limit_net);
    nl.mark_output("ok", ok);
    (nl, ok)
}

/// An adder pipeline whose output forced odd is unsatisfiable — exercises
/// the modular datapath leaf, not just Boolean search.
fn datapath_design() -> Verification {
    let mut nl = Netlist::new("doubled");
    let a = nl.input("a", 8);
    let (q, ff) = nl.dff_deferred(8, Some(Bv::zero(8)));
    let doubled = nl.add(a, a);
    nl.connect_dff_data(ff, doubled);
    let one = nl.constant(&Bv::from_u64(1, 1));
    let low = nl.slice(q, 0, 1);
    let is_odd = nl.eq(low, one);
    let ok = nl.not(is_odd);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, "never_odd", ok);
    Verification::new(nl, property)
}

fn check_both_ways(verification: &Verification, max_frames: usize) {
    let base = CheckerOptions {
        max_frames,
        ..CheckerOptions::default()
    };
    let untraced = AssertionChecker::new(base.clone()).check(verification);

    let tracer = Arc::new(Tracer::new(65_536));
    let traced_options = base.with_trace(TraceSink::to(tracer.clone()));
    let traced = AssertionChecker::new(traced_options).check(verification);

    // Verdicts (including any counter-example trace, byte for byte).
    assert_eq!(untraced.result, traced.result);
    assert_eq!(untraced.property, traced.property);

    // Decision sequence: the searches are deterministic, so equality of
    // every effort counter at every level pins the two runs to the same
    // decisions in the same order.
    assert_eq!(untraced.stats.decisions, traced.stats.decisions);
    assert_eq!(untraced.stats.backtracks, traced.stats.backtracks);
    assert_eq!(untraced.stats.implication, traced.stats.implication);
    assert_eq!(
        untraced.stats.arithmetic_calls,
        traced.stats.arithmetic_calls
    );
    assert_eq!(
        untraced.stats.island_cache_hits,
        traced.stats.island_cache_hits
    );
    assert_eq!(
        untraced.stats.island_cache_misses,
        traced.stats.island_cache_misses
    );
    assert_eq!(
        untraced.stats.datapath_fact_hits,
        traced.stats.datapath_fact_hits
    );
    assert_eq!(
        untraced.stats.justify_gates_rechecked,
        traced.stats.justify_gates_rechecked
    );
    assert_eq!(untraced.stats.frames_explored, traced.stats.frames_explored);

    // trace=false leaves the phase breakdown untouched.
    assert_eq!(untraced.stats.phases.total(), 0);

    // trace=true partitions elapsed into phases: the sum must track the
    // wall clock to within 10% (the acceptance bound of the `trace_check`
    // exposition built on this data).
    let elapsed = traced.stats.elapsed.as_nanos() as u64;
    let total = traced.stats.phases.total();
    assert!(total > 0, "traced run must attribute time");
    let bound = elapsed / 10;
    assert!(
        total.abs_diff(elapsed) <= bound.max(1_000),
        "phase sum {total} vs elapsed {elapsed} diverges by more than 10%"
    );

    // Span events describe the run: a search span per bound and one
    // decision event per decision (modulo ring eviction, sized out here).
    let events = tracer.events();
    assert!(events.iter().any(|e| e.name == "search"));
    assert!(events.iter().any(|e| e.name == "bound"));
    let decisions = events.iter().filter(|e| e.name == "decision").count() as u64;
    assert_eq!(decisions, traced.stats.decisions);
}

#[test]
fn tracing_is_invisible_to_a_proved_invariant() {
    // Wraps at 5, monitor q < 9: holds (bounded or induction-proved).
    let (nl, ok) = bounded_counter(9, 5);
    let property = Property::always(&nl, "below_9", ok);
    let verification = Verification::new(nl, property);
    check_both_ways(&verification, 8);
}

#[test]
fn tracing_is_invisible_to_a_counterexample() {
    // Wraps at 12, monitor q < 5: fails after 5 cycles; the concrete
    // counter-example trace must be byte-identical with tracing on.
    let (nl, ok) = bounded_counter(5, 12);
    let property = Property::always(&nl, "below_5", ok);
    let verification = Verification::new(nl, property);
    check_both_ways(&verification, 8);
}

#[test]
fn tracing_is_invisible_to_the_datapath_solver() {
    check_both_ways(&datapath_design(), 6);
}
