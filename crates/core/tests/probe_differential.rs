//! Differential proof that live-progress publication is pure observability:
//! running the exact same check with `CheckerOptions::progress` attached and
//! detached must produce byte-identical verdicts and the same decision
//! sequence (every search counter equal at every level of aggregation). The
//! probed run must additionally leave its closing counters in the progress
//! cell, consistent with the counters the report carries.

use std::sync::Arc;
use wlac_atpg::{AssertionChecker, CheckerOptions, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};
use wlac_telemetry::{ProgressCell, ProgressHandle};

/// A 4-bit counter wrapping at `wrap_at`, monitored by `q < limit`.
fn bounded_counter(limit: u64, wrap_at: u64) -> (Netlist, NetId) {
    let mut nl = Netlist::new("bounded_counter");
    let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
    let one = nl.constant(&Bv::from_u64(4, 1));
    let plus = nl.add(q, one);
    let wrap = nl.constant(&Bv::from_u64(4, wrap_at));
    let at_wrap = nl.eq(q, wrap);
    let zero = nl.constant(&Bv::zero(4));
    let next = nl.mux(at_wrap, zero, plus);
    nl.connect_dff_data(ff, next);
    let limit_net = nl.constant(&Bv::from_u64(4, limit));
    let ok = nl.lt(q, limit_net);
    nl.mark_output("ok", ok);
    (nl, ok)
}

/// An adder pipeline whose output forced odd is unsatisfiable — exercises
/// the modular datapath leaf, not just Boolean search.
fn datapath_design() -> Verification {
    let mut nl = Netlist::new("doubled");
    let a = nl.input("a", 8);
    let (q, ff) = nl.dff_deferred(8, Some(Bv::zero(8)));
    let doubled = nl.add(a, a);
    nl.connect_dff_data(ff, doubled);
    let one = nl.constant(&Bv::from_u64(1, 1));
    let low = nl.slice(q, 0, 1);
    let is_odd = nl.eq(low, one);
    let ok = nl.not(is_odd);
    nl.mark_output("ok", ok);
    let property = Property::always(&nl, "never_odd", ok);
    Verification::new(nl, property)
}

fn check_both_ways(verification: &Verification, max_frames: usize) {
    let base = CheckerOptions {
        max_frames,
        ..CheckerOptions::default()
    };
    let unprobed = AssertionChecker::new(base.clone()).check(verification);

    let cell = Arc::new(ProgressCell::new());
    let probed_options = base.with_progress(ProgressHandle::to(Arc::clone(&cell)));
    let probed = AssertionChecker::new(probed_options).check(verification);

    // Verdicts (including any counter-example trace, byte for byte).
    assert_eq!(unprobed.result, probed.result);
    assert_eq!(unprobed.property, probed.property);

    // Decision sequence: the searches are deterministic, so equality of
    // every effort counter at every level pins the two runs to the same
    // decisions in the same order.
    assert_eq!(unprobed.stats.decisions, probed.stats.decisions);
    assert_eq!(unprobed.stats.conflicts, probed.stats.conflicts);
    assert_eq!(unprobed.stats.backtracks, probed.stats.backtracks);
    assert_eq!(unprobed.stats.implication, probed.stats.implication);
    assert_eq!(
        unprobed.stats.arithmetic_calls,
        probed.stats.arithmetic_calls
    );
    assert_eq!(
        unprobed.stats.island_cache_hits,
        probed.stats.island_cache_hits
    );
    assert_eq!(
        unprobed.stats.island_cache_misses,
        probed.stats.island_cache_misses
    );
    assert_eq!(
        unprobed.stats.datapath_fact_hits,
        probed.stats.datapath_fact_hits
    );
    assert_eq!(
        unprobed.stats.justify_gates_rechecked,
        probed.stats.justify_gates_rechecked
    );
    assert_eq!(unprobed.stats.frames_explored, probed.stats.frames_explored);

    // The cell ends the run holding the search's closing counters: the
    // final publish of the last search pass wrote the cumulative stats the
    // report carries, and every bound advance registered as a restart.
    assert!(cell.has_published(), "probed run must publish");
    let snapshot = cell.snapshot();
    assert!(snapshot.probes >= 1);
    assert!(snapshot.bound >= 1, "at least one frame bound was searched");
    assert_eq!(snapshot.decisions, probed.stats.decisions);
    assert_eq!(snapshot.conflicts, probed.stats.conflicts);
    assert_eq!(snapshot.backtracks, probed.stats.backtracks);
    assert_eq!(
        snapshot.implications,
        probed.stats.implication.gate_evaluations
    );
    assert_eq!(snapshot.restarts as usize, probed.stats.frames_explored);
}

#[test]
fn probes_are_invisible_to_a_proved_invariant() {
    // Wraps at 5, monitor q < 9: holds (bounded or induction-proved).
    let (nl, ok) = bounded_counter(9, 5);
    let property = Property::always(&nl, "below_9", ok);
    let verification = Verification::new(nl, property);
    check_both_ways(&verification, 8);
}

#[test]
fn probes_are_invisible_to_a_counterexample() {
    // Wraps at 12, monitor q < 5: fails after 5 cycles; the concrete
    // counter-example trace must be byte-identical with probing on.
    let (nl, ok) = bounded_counter(5, 12);
    let property = Property::always(&nl, "below_5", ok);
    let verification = Verification::new(nl, property);
    check_both_ways(&verification, 8);
}

#[test]
fn probes_are_invisible_to_the_datapath_solver() {
    check_both_ways(&datapath_design(), 6);
}

#[test]
fn probes_are_invisible_to_a_witness_search() {
    // The monitor is reachable, so the witness search answers quickly; the
    // point is covering `check_eventually`'s probe sites.
    let (nl, ok) = bounded_counter(9, 5);
    let property = Property::eventually(&nl, "sees_ok", ok);
    let verification = Verification::new(nl, property);
    check_both_ways(&verification, 8);
}
