//! Post-mortem dumps: when a fault path fires, write everything an operator
//! needs to diagnose it *at the moment it happened* — the flight recorder's
//! event tail, the full metrics snapshot, the triggering job's descriptor
//! and the fault's stable name — into one atomically-written JSON bundle.
//!
//! Faults are contained by design (PR 7–8): a quarantined job, a timed-out
//! race or a torn journal tail degrades service without stopping it, which
//! also means the evidence is gone by the time anyone looks. The dump
//! captures it eagerly. Bundles land in a bounded directory
//! (`pm-NNNNNN-<fault>.json`): oldest-first eviction keeps the count and
//! total bytes under the configured caps, so a fault storm cannot fill the
//! disk. Writes reuse the snapshot layer's temp + rename + fsync idiom
//! ([`wlac_persist::write_atomic`]) — a crash mid-dump never leaves a torn
//! bundle for tooling to choke on.

use crate::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};
use wlac_faultinject::LockExt;
use wlac_persist::write_atomic;
use wlac_service::{FaultReport, FaultSink};
use wlac_telemetry::{FlightEvent, FlightRecorder, MetricsRegistry};

/// Default cap on the number of bundles kept.
pub const DEFAULT_MAX_DUMPS: usize = 32;

/// Default cap on the total bytes of bundles kept.
pub const DEFAULT_MAX_BYTES: u64 = 8 << 20;

/// Writes bounded, atomically-published post-mortem bundles. One instance
/// serves the whole server: the service's fault-report hook (quarantines and
/// timeouts) and the server's own durability fault paths (rejected
/// snapshots, quarantined journal tails, failed autosaves) all dump through
/// it.
pub struct PostmortemWriter {
    dir: PathBuf,
    max_dumps: usize,
    max_bytes: u64,
    seq: AtomicU64,
    recorder: Arc<FlightRecorder>,
    metrics: Arc<MetricsRegistry>,
    /// Serialises write + eviction so two concurrent faults cannot race the
    /// directory scan into evicting each other's fresh bundle.
    write_lock: Mutex<()>,
}

impl PostmortemWriter {
    /// A writer dumping into `dir` (created on first dump) with the given
    /// count/byte caps, snapshotting `recorder` and `metrics` into every
    /// bundle. Dump attempts and outcomes are counted in `metrics`
    /// (`server_postmortems_written_total`, `..._evicted_total`,
    /// `..._write_failures_total`).
    pub fn new(
        dir: PathBuf,
        max_dumps: usize,
        max_bytes: u64,
        recorder: Arc<FlightRecorder>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let seq = AtomicU64::new(next_seq_on_disk(&dir_entries(&dir)));
        PostmortemWriter {
            dir,
            max_dumps: max_dumps.max(1),
            max_bytes: max_bytes.max(1),
            seq,
            recorder,
            metrics,
            write_lock: Mutex::new(()),
        }
    }

    /// The dump directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Writes one bundle. `fault` must be a stable `snake_case` fault-path
    /// name (it becomes part of the file name); `job` scopes the bundle's
    /// `job_events` tail (0 means not job-scoped); `extra` carries
    /// fault-specific context (a job descriptor, a path, byte counts).
    ///
    /// Never panics and never returns an error: a post-mortem that cannot be
    /// written is counted (`server_postmortem_write_failures_total`) and
    /// logged, because the dump path runs inside fault paths — failing
    /// *here* must not compound the fault being recorded.
    pub fn dump(&self, fault: &str, detail: &str, job: u64, extra: Vec<(&str, Json)>) {
        let _guard = self.write_lock.lock_recover();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("pm-{seq:06}-{fault}.json"));
        let bundle = self.bundle(fault, detail, job, extra);
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            self.note_failure(fault, &format!("creating {}: {e}", self.dir.display()));
            return;
        }
        match write_atomic(&path, bundle.to_string().as_bytes()) {
            Ok(()) => {
                self.metrics
                    .counter("server_postmortems_written_total")
                    .inc();
                eprintln!("wlac-server: post-mortem dumped to {}", path.display());
            }
            Err(e) => {
                self.note_failure(fault, &format!("writing {}: {e}", path.display()));
                return;
            }
        }
        self.evict();
    }

    fn note_failure(&self, fault: &str, detail: &str) {
        self.metrics
            .counter("server_postmortem_write_failures_total")
            .inc();
        eprintln!("wlac-server: post-mortem dump for `{fault}` failed: {detail}");
    }

    fn bundle(&self, fault: &str, detail: &str, job: u64, extra: Vec<(&str, Json)>) -> Json {
        let at_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let events = self.recorder.snapshot();
        let job_events = Json::Arr(
            events
                .iter()
                .filter(|e| job != 0 && e.job == job)
                .map(event_to_json)
                .collect(),
        );
        let metrics_rendered = self.metrics.render_json();
        let metrics = Json::parse(&metrics_rendered)
            .unwrap_or_else(|e| Json::str(format!("metrics rendering failed to parse: {e}")));
        let mut members = vec![
            ("fault", Json::str(fault.to_string())),
            ("detail", Json::str(detail.to_string())),
            ("at_unix_ms", Json::num(at_unix_ms)),
            ("job", Json::num(job)),
        ];
        members.extend(extra);
        members.extend([
            (
                "flight_recorder",
                Json::obj(vec![
                    ("capacity", Json::num(self.recorder.capacity() as u64)),
                    ("recorded", Json::num(self.recorder.recorded())),
                    ("overwritten", Json::num(self.recorder.overwrites())),
                    (
                        "events",
                        Json::Arr(events.iter().map(event_to_json).collect()),
                    ),
                ]),
            ),
            ("job_events", job_events),
            ("metrics", metrics),
        ]);
        Json::obj(members)
    }

    /// Oldest-first eviction down to the caps. The lexicographic order of
    /// `pm-NNNNNN-*` names *is* the write order (the sequence is
    /// monotonic and zero-padded), so no timestamps are needed.
    fn evict(&self) {
        let mut bundles = dir_entries(&self.dir);
        bundles.sort();
        let mut total: u64 = bundles.iter().map(|(_, bytes)| bytes).sum();
        let mut count = bundles.len();
        for (name, bytes) in &bundles {
            if count <= self.max_dumps && total <= self.max_bytes {
                break;
            }
            // Never evict below one bundle: the newest dump survives even
            // when it alone exceeds the byte cap.
            if count <= 1 {
                break;
            }
            if std::fs::remove_file(self.dir.join(name)).is_ok() {
                self.metrics
                    .counter("server_postmortems_evicted_total")
                    .inc();
            }
            count -= 1;
            total = total.saturating_sub(*bytes);
        }
    }
}

impl std::fmt::Debug for PostmortemWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PostmortemWriter")
            .field("dir", &self.dir)
            .field("max_dumps", &self.max_dumps)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

/// The service's contained faults (quarantine, timeout) dump through the
/// same writer, carrying the triggering job's descriptor.
impl FaultSink for PostmortemWriter {
    fn fault(&self, report: &FaultReport<'_>) {
        self.dump(
            report.fault,
            &report.detail,
            report.job,
            vec![(
                "job_descriptor",
                Json::obj(vec![
                    ("batch", Json::num(report.batch)),
                    ("index", Json::num(report.index as u64)),
                    (
                        "design",
                        Json::str(crate::proto::design_to_wire(report.design)),
                    ),
                    ("property", Json::str(report.property.to_string())),
                    ("wall_ms", Json::Num(report.wall.as_secs_f64() * 1e3)),
                ]),
            )],
        );
    }
}

/// One flight-recorder event on the wire / in a bundle.
///
/// The payload words travel as hex strings: they are full-width `u64`s —
/// design hashes, `u64::MAX` sentinels — and JSON doubles stop being exact
/// at 2^53, where `Json::num` (correctly) refuses them.
pub fn event_to_json(event: &FlightEvent) -> Json {
    Json::obj(vec![
        ("seq", Json::num(event.seq)),
        ("at_ns", Json::num(event.at_nanos)),
        ("layer", Json::str(event.layer.as_str())),
        ("kind", Json::str(event.kind.as_str())),
        ("job", Json::num(event.job)),
        ("p0", Json::str(format!("{:#x}", event.payload[0]))),
        ("p1", Json::str(format!("{:#x}", event.payload[1]))),
    ])
}

/// The `pm-*.json` bundles in `dir` with their sizes (empty when the
/// directory does not exist yet).
fn dir_entries(dir: &PathBuf) -> Vec<(String, u64)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("pm-") || !name.ends_with(".json") {
                return None;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            Some((name, bytes))
        })
        .collect()
}

/// Restarting must not overwrite earlier bundles: resume the sequence past
/// the highest `pm-NNNNNN` already on disk.
fn next_seq_on_disk(bundles: &[(String, u64)]) -> u64 {
    bundles
        .iter()
        .filter_map(|(name, _)| name.get(3..9)?.parse::<u64>().ok())
        .max()
        .map(|max| max + 1)
        .unwrap_or(0)
}
