//! The TCP front end: listener, per-connection handlers, request dispatch,
//! autosave and restart-warm boot.

use crate::json::Json;
use crate::proto::{
    design_from_wire, design_to_wire, error_reply, hex_decode, hex_encode, job_result_to_wire,
    ok_reply, stats_to_wire, ErrorCode,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wlac_atpg::{Property, PropertyKind, Verification};
use wlac_netlist::{NetId, Netlist};
use wlac_persist::{
    decode_snapshot, encode_snapshot, load_snapshot, save_snapshot, snapshot_file_name, Snapshot,
};
use wlac_service::{BatchId, DesignHash, JobResult, ServiceConfig, VerificationService};

/// How the server comes up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Snapshot directory. `None` disables persistence: the server still
    /// serves traffic but restarts cold.
    pub data_dir: Option<PathBuf>,
    /// The verification-service configuration behind the front end.
    pub service: ServiceConfig,
}

impl ServerConfig {
    /// Defaults: loopback on port 7117, no persistence, default service.
    pub fn new() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7117".to_string(),
            data_dir: None,
            service: ServiceConfig::default(),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

struct ServerState {
    service: VerificationService,
    /// Canonical netlist per design, for monitor-name resolution and
    /// snapshot assembly (the service's own registry is private to it).
    designs: Mutex<HashMap<DesignHash, Netlist>>,
    data_dir: Option<PathBuf>,
    shutting_down: AtomicBool,
    loaded_snapshots: AtomicUsize,
    /// Requests currently being dispatched or having their reply written.
    /// The shutdown path waits for this to reach zero so no client loses an
    /// already-earned reply (or its autosave) to the process exiting.
    active_requests: AtomicUsize,
}

/// A running verification server.
///
/// [`Server::bind`] loads any snapshots found in the data directory (a
/// restarted server answers repeat queries warm), then [`Server::run`]
/// accepts connections until a `shutdown` request arrives; the shutdown path
/// drains in-flight jobs and saves every design before returning.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and warm-loads persisted state.
    ///
    /// Snapshot files that fail validation (truncated, corrupt, foreign) are
    /// skipped with a diagnostic on stderr — a bad snapshot costs warmth,
    /// never integrity.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address or creating the data directory.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            service: VerificationService::new(config.service),
            designs: Mutex::new(HashMap::new()),
            data_dir: config.data_dir,
            shutting_down: AtomicBool::new(false),
            loaded_snapshots: AtomicUsize::new(0),
            active_requests: AtomicUsize::new(0),
        });
        load_all_snapshots(&state);
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's failure to report its address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of snapshots successfully loaded at boot.
    pub fn loaded_snapshots(&self) -> usize {
        self.state.loaded_snapshots.load(Ordering::Relaxed)
    }

    /// Serves connections until a `shutdown` request completes. Each
    /// connection gets its own thread; the accept loop polls so it can
    /// observe the shutdown flag. On exit every in-flight job has finished
    /// and every design has been saved.
    pub fn run(self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.state.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("wlac-server: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        // Connection threads are detached, so wait for every in-flight
        // request (a reply mid-write on another connection, its autosave)
        // to finish before the final sweep; readers idling on their sockets
        // don't count and don't block exit. Bounded so a pathological
        // handler cannot wedge shutdown forever.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while self.state.active_requests.load(Ordering::Acquire) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // The shutdown request already drained and saved; a second pass here
        // catches anything submitted on other connections in the window
        // between that drain and the accept loop noticing the flag.
        self.state.service.drain();
        save_all_designs(&self.state);
    }
}

fn load_all_snapshots(state: &ServerState) {
    let Some(dir) = &state.data_dir else {
        return;
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("wlac-server: cannot scan {}: {e}", dir.display());
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wlacsnap") {
            continue;
        }
        let snapshot = match load_snapshot(&path) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("wlac-server: skipping snapshot {}: {e}", path.display());
                continue;
            }
        };
        let design = state.service.register_design(&snapshot.netlist);
        if design != snapshot.knowledge.design() {
            // decode_snapshot re-derives the hash, so this means the service
            // and the snapshot disagree about identity — do not trust it.
            eprintln!(
                "wlac-server: skipping snapshot {}: design hash mismatch",
                path.display()
            );
            continue;
        }
        if let Err(e) = state.service.import_knowledge(design, &snapshot.knowledge) {
            eprintln!(
                "wlac-server: snapshot {} failed knowledge validation: {e}",
                path.display()
            );
            continue;
        }
        if let Err(e) = state.service.import_verdicts(design, &snapshot.verdicts) {
            eprintln!(
                "wlac-server: snapshot {} failed verdict validation: {e}",
                path.display()
            );
            continue;
        }
        state
            .designs
            .lock()
            .expect("designs lock")
            .insert(design, snapshot.netlist);
        state.loaded_snapshots.fetch_add(1, Ordering::Relaxed);
    }
}

fn assemble_snapshot(state: &ServerState, design: DesignHash) -> Option<Snapshot> {
    let netlist = state
        .designs
        .lock()
        .expect("designs lock")
        .get(&design)?
        .clone();
    Some(Snapshot {
        netlist,
        knowledge: state.service.export_knowledge(design)?,
        verdicts: state.service.export_verdicts(design)?,
    })
}

fn save_design(state: &ServerState, design: DesignHash) {
    let Some(dir) = &state.data_dir else {
        return;
    };
    let Some(snapshot) = assemble_snapshot(state, design) else {
        return;
    };
    let path = dir.join(snapshot_file_name(design));
    if let Err(e) = save_snapshot(&path, &snapshot) {
        eprintln!("wlac-server: autosave of {design} failed: {e}");
    }
}

fn save_all_designs(state: &ServerState) -> usize {
    let designs: Vec<DesignHash> = state
        .designs
        .lock()
        .expect("designs lock")
        .keys()
        .copied()
        .collect();
    for design in &designs {
        save_design(state, *design);
    }
    designs.len()
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        state.active_requests.fetch_add(1, Ordering::AcqRel);
        let reply = dispatch(state, &line);
        let sent = writer
            .write_all(format!("{reply}\n").as_bytes())
            .and_then(|()| writer.flush());
        state.active_requests.fetch_sub(1, Ordering::AcqRel);
        if sent.is_err() {
            return;
        }
    }
}

fn dispatch(state: &ServerState, line: &str) -> Json {
    let frame = match Json::parse(line) {
        Ok(frame) => frame,
        Err(e) => return error_reply(ErrorCode::BadJson, e.to_string()),
    };
    let Some(op) = frame.get("op").and_then(Json::as_str) else {
        return error_reply(ErrorCode::BadRequest, "missing string member `op`");
    };
    if state.shutting_down.load(Ordering::Acquire)
        && matches!(op, "register_design" | "submit_batch" | "import_knowledge")
    {
        return error_reply(ErrorCode::ShuttingDown, "server is draining");
    }
    match op {
        "ping" => ok_reply(Vec::new()),
        "register_design" => op_register_design(state, &frame),
        "submit_batch" => op_submit_batch(state, &frame),
        "poll" => op_poll(state, &frame),
        "results" => op_results(state, &frame),
        "wait" => op_wait(state, &frame),
        "stats" => ok_reply(vec![(
            "stats",
            stats_to_wire(
                &state.service.stats(),
                state.loaded_snapshots.load(Ordering::Relaxed),
            ),
        )]),
        "export_knowledge" => op_export_knowledge(state, &frame),
        "import_knowledge" => op_import_knowledge(state, &frame),
        "shutdown" => op_shutdown(state),
        _ => error_reply(ErrorCode::UnknownOp, format!("unknown op `{op}`")),
    }
}

fn op_register_design(state: &ServerState, frame: &Json) -> Json {
    let Some(source) = frame.get("source").and_then(Json::as_str) else {
        return error_reply(ErrorCode::BadRequest, "missing string member `source`");
    };
    let netlist = match wlac_frontend::compile(source) {
        Ok(netlist) => netlist,
        Err(e) => return error_reply(ErrorCode::CompileError, e.to_string()),
    };
    let design = state.service.register_design(&netlist);
    let outputs = Json::Arr(
        netlist
            .outputs()
            .iter()
            .map(|(name, _)| Json::str(name.clone()))
            .collect(),
    );
    let name = netlist.name().to_string();
    state
        .designs
        .lock()
        .expect("designs lock")
        .entry(design)
        .or_insert(netlist);
    ok_reply(vec![
        ("design", Json::str(design_to_wire(design))),
        ("module", Json::str(name)),
        ("outputs", outputs),
    ])
}

/// Resolves a monitor reference: a marked output name first, then any named
/// net. Must be a single-bit net.
fn resolve_monitor(netlist: &Netlist, name: &str) -> Result<NetId, String> {
    let net = netlist
        .outputs()
        .iter()
        .find(|(output, _)| output == name)
        .map(|(_, net)| *net)
        .or_else(|| netlist.find_net(name))
        .ok_or_else(|| format!("no output or named net `{name}`"))?;
    if netlist.net_width(net) != 1 {
        return Err(format!(
            "`{name}` is {} bits wide; monitors must be single-bit",
            netlist.net_width(net)
        ));
    }
    Ok(net)
}

fn parse_job(state: &ServerState, job: &Json, index: usize) -> Result<Verification, Json> {
    let bad = |message: String| Err(error_reply(ErrorCode::BadProperty, message));
    let Some(design_text) = job.get("design").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: missing string member `design`"),
        ));
    };
    let Some(design) = design_from_wire(design_text) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: `{design_text}` is not a design hash"),
        ));
    };
    let netlist = {
        let designs = state.designs.lock().expect("designs lock");
        match designs.get(&design) {
            Some(netlist) => netlist.clone(),
            None => {
                return Err(error_reply(
                    ErrorCode::UnknownDesign,
                    format!("job #{index}: design {design_text} is not registered"),
                ))
            }
        }
    };
    let Some(property) = job.get("property") else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: missing member `property`"),
        ));
    };
    let kind = match property.get("kind").and_then(Json::as_str) {
        Some("always") | None => PropertyKind::Always,
        Some("eventually") => PropertyKind::Eventually,
        Some(other) => {
            return bad(format!(
                "job #{index}: property kind `{other}` (expected `always` or `eventually`)"
            ))
        }
    };
    let Some(monitor_name) = property.get("monitor").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: property is missing string member `monitor`"),
        ));
    };
    let monitor = match resolve_monitor(&netlist, monitor_name) {
        Ok(net) => net,
        Err(message) => return bad(format!("job #{index}: {message}")),
    };
    let name = property
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or(monitor_name)
        .to_string();
    let mut environment = Vec::new();
    if let Some(env) = job.get("environment") {
        let Some(items) = env.as_arr() else {
            return bad(format!("job #{index}: `environment` must be an array"));
        };
        for item in items {
            let Some(env_name) = item.as_str() else {
                return bad(format!("job #{index}: environment entries must be strings"));
            };
            match resolve_monitor(&netlist, env_name) {
                Ok(net) => environment.push(net),
                Err(message) => return bad(format!("job #{index}: {message}")),
            }
        }
    }
    let property = Property {
        name,
        kind,
        monitor,
    };
    Ok(Verification {
        netlist,
        property,
        environment,
    })
}

fn op_submit_batch(state: &ServerState, frame: &Json) -> Json {
    let Some(jobs) = frame.get("jobs").and_then(Json::as_arr) else {
        return error_reply(ErrorCode::BadRequest, "missing array member `jobs`");
    };
    let mut verifications = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        match parse_job(state, job, index) {
            Ok(verification) => verifications.push(verification),
            Err(reply) => return reply,
        }
    }
    let batch = state.service.submit_batch(verifications);
    ok_reply(vec![("batch", Json::num(batch.raw()))])
}

fn batch_from(frame: &Json) -> Result<BatchId, Json> {
    frame
        .get("batch")
        .and_then(Json::as_u64)
        .map(BatchId::from_raw)
        .ok_or_else(|| error_reply(ErrorCode::BadRequest, "missing integer member `batch`"))
}

fn op_poll(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    match state.service.poll(batch) {
        Some(status) => ok_reply(vec![
            ("total", Json::num(status.total as u64)),
            ("completed", Json::num(status.completed as u64)),
            ("done", Json::Bool(status.done())),
        ]),
        None => error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw())),
    }
}

fn results_reply(state: &ServerState, results: Vec<JobResult>) -> Json {
    // Autosave every design this batch actually raced on, so even a kill -9
    // after the reply keeps the warmth. A design whose jobs were all
    // answered from the verdict cache learned nothing — skipping it keeps
    // the warm path free of redundant snapshot writes.
    let mut saved: Vec<DesignHash> = results
        .iter()
        .filter(|r| !r.from_cache)
        .map(|r| r.design)
        .collect();
    saved.sort_unstable_by_key(|d| d.0);
    saved.dedup();
    for design in saved {
        save_design(state, design);
    }
    ok_reply(vec![(
        "results",
        Json::Arr(results.iter().map(job_result_to_wire).collect()),
    )])
}

fn op_results(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    match state.service.results(batch) {
        Some(results) => results_reply(state, results),
        None => match state.service.poll(batch) {
            Some(_) => error_reply(ErrorCode::NotDone, "batch is still running; poll or wait"),
            None => error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw())),
        },
    }
}

fn op_wait(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    if state.service.poll(batch).is_none() {
        return error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw()));
    }
    let results = state.service.wait(batch);
    results_reply(state, results)
}

fn design_from(state: &ServerState, frame: &Json) -> Result<DesignHash, Json> {
    let Some(text) = frame.get("design").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            "missing string member `design`",
        ));
    };
    let Some(design) = design_from_wire(text) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("`{text}` is not a design hash"),
        ));
    };
    if !state
        .designs
        .lock()
        .expect("designs lock")
        .contains_key(&design)
    {
        return Err(error_reply(
            ErrorCode::UnknownDesign,
            format!("design {text} is not registered"),
        ));
    }
    Ok(design)
}

fn op_export_knowledge(state: &ServerState, frame: &Json) -> Json {
    let design = match design_from(state, frame) {
        Ok(design) => design,
        Err(reply) => return reply,
    };
    let Some(snapshot) = assemble_snapshot(state, design) else {
        return error_reply(ErrorCode::Internal, "design vanished mid-export");
    };
    match encode_snapshot(&snapshot) {
        Ok(bytes) => ok_reply(vec![
            ("design", Json::str(design_to_wire(design))),
            ("snapshot", Json::str(hex_encode(&bytes))),
        ]),
        Err(e) => error_reply(ErrorCode::Internal, e.to_string()),
    }
}

fn op_import_knowledge(state: &ServerState, frame: &Json) -> Json {
    let Some(hex) = frame.get("snapshot").and_then(Json::as_str) else {
        return error_reply(ErrorCode::BadRequest, "missing string member `snapshot`");
    };
    let Some(bytes) = hex_decode(hex) else {
        return error_reply(ErrorCode::BadRequest, "`snapshot` is not hex");
    };
    let snapshot = match decode_snapshot(&bytes) {
        Ok(snapshot) => snapshot,
        Err(e) => return error_reply(ErrorCode::BadSnapshot, e.to_string()),
    };
    // When the caller names a design, the snapshot must describe it — this
    // is how a client warm-starting a specific design finds out it sent the
    // wrong file.
    if let Some(text) = frame.get("design").and_then(Json::as_str) {
        match design_from_wire(text) {
            Some(design) if design == snapshot.knowledge.design() => {}
            Some(_) | None => {
                return error_reply(
                    ErrorCode::BadSnapshot,
                    format!(
                        "snapshot describes design {}, not {text}",
                        design_to_wire(snapshot.knowledge.design())
                    ),
                )
            }
        }
    }
    let design = state.service.register_design(&snapshot.netlist);
    if design != snapshot.knowledge.design() {
        return error_reply(ErrorCode::BadSnapshot, "design hash mismatch");
    }
    if let Err(e) = state.service.import_knowledge(design, &snapshot.knowledge) {
        return error_reply(ErrorCode::BadSnapshot, e.to_string());
    }
    let verdicts = match state.service.import_verdicts(design, &snapshot.verdicts) {
        Ok(count) => count,
        Err(e) => return error_reply(ErrorCode::BadSnapshot, e.to_string()),
    };
    state
        .designs
        .lock()
        .expect("designs lock")
        .entry(design)
        .or_insert(snapshot.netlist);
    ok_reply(vec![
        ("design", Json::str(design_to_wire(design))),
        ("verdicts", Json::num(verdicts as u64)),
    ])
}

fn op_shutdown(state: &ServerState) -> Json {
    state.shutting_down.store(true, Ordering::Release);
    // Drain before replying: when the client sees this reply, every job it
    // (or anyone else) submitted has a result and is on disk.
    state.service.drain();
    let saved = save_all_designs(state);
    ok_reply(vec![("saved_designs", Json::num(saved as u64))])
}
