//! The TCP front end: listener, per-connection handlers, request dispatch,
//! autosave and restart-warm boot.

use crate::json::Json;
use crate::postmortem::{event_to_json, PostmortemWriter, DEFAULT_MAX_BYTES, DEFAULT_MAX_DUMPS};
use crate::proto::{
    design_from_wire, design_to_wire, error_reply, error_reply_with_retry, hex_decode, hex_encode,
    job_progress_to_wire, job_result_to_wire, ok_reply, probe_to_wire, stats_to_wire,
    DurabilityStats, ErrorCode,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wlac_atpg::{
    AssertionChecker, CheckReport, CheckResult, CheckerOptions, Property, PropertyKind, TraceSink,
    Verification,
};
use wlac_faultinject::{CondvarExt, FaultPlan, LockExt};
use wlac_netlist::{NetId, Netlist};
use wlac_persist::{
    clean_stale_temp_files, decode_snapshot, encode_snapshot, load_snapshot_with_fallback,
    read_journal, remove_stale_journal, save_snapshot_faulted, snapshot_file_name,
    truncate_to_valid, DurabilityMode, JournalSink, Snapshot,
};
use wlac_service::{
    BatchId, DesignHash, DurabilityHook, FaultReportHook, JobResult, KnowledgeBase, ServiceConfig,
    VerificationService,
};
use wlac_telemetry::{
    FlightRecorder, MetricsRegistry, RecorderHandle, RecorderKind, RecorderLayer, SpanId, Tracer,
};

/// Every op the dispatcher accepts, plus the two catch-all buckets
/// (`unknown` for an unrecognised `op`, `invalid` for frames with no usable
/// `op` at all) — the enumeration behind the per-op request counters and
/// latency histograms.
const KNOWN_OPS: [&str; 18] = [
    "ping",
    "register_design",
    "submit_batch",
    "poll",
    "results",
    "wait",
    "progress",
    "subscribe",
    "stats",
    "export_knowledge",
    "import_knowledge",
    "metrics",
    "health",
    "events",
    "trace_check",
    "shutdown",
    "unknown",
    "invalid",
];

/// Interns an op string into [`KNOWN_OPS`] (metric names want `'static`).
fn canonical_op(op: &str) -> &'static str {
    KNOWN_OPS
        .iter()
        .find(|known| **known == op)
        .copied()
        .unwrap_or("unknown")
}

/// How the server comes up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Snapshot directory. `None` disables persistence: the server still
    /// serves traffic but restarts cold.
    pub data_dir: Option<PathBuf>,
    /// The verification-service configuration behind the front end.
    pub service: ServiceConfig,
    /// Requests slower than this get a structured line on stderr (op, wall
    /// clock, outcome) — the slow-request log.
    pub slow_request_threshold: Duration,
    /// Per-connection socket read timeout: a client that goes silent this
    /// long has its connection closed (its submitted work keeps running).
    /// `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout: a client that stops consuming
    /// its replies this long has its connection closed.
    pub write_timeout: Option<Duration>,
    /// Connection cap. Connections beyond it are shed with a structured
    /// `overloaded` reply carrying a `retry_after_ms` hint, instead of
    /// letting unbounded accepts exhaust threads.
    pub max_connections: usize,
    /// The back-off hint shed connections carry.
    pub retry_after: Duration,
    /// Upper bound of a server-side `wait`: a `wait` request blocks at most
    /// this long (clients may ask for less via `timeout_ms`), then gets a
    /// structured `timeout` error while the batch keeps running.
    pub wait_timeout: Duration,
    /// Bounded send queue of a `subscribe` stream, in frames. A subscriber
    /// that stops reading fills it and is shed (its socket is closed and
    /// `server_subscribe_dropped_total` counts the event) instead of
    /// back-pressuring the producer; workers never block on subscribers
    /// either way, because progress is pulled from lock-free cells.
    pub subscribe_queue: usize,
    /// Default tick of a `subscribe` stream's periodic `progress` events
    /// (clients may override per request via `interval_ms`).
    pub subscribe_interval: Duration,
    /// How long shutdown waits for in-flight requests and queued jobs
    /// before abandoning them and saving what finished.
    pub drain_timeout: Duration,
    /// Fault-injection plan for the server's own I/O (autosave and the
    /// write-ahead journal). The service's plan is configured separately in
    /// [`ServiceConfig`].
    pub faults: FaultPlan,
    /// What an acknowledged result promises about a crash:
    /// [`DurabilityMode::Snapshot`] autosaves a whole snapshot per completed
    /// batch (the pre-journal behaviour), [`DurabilityMode::Journal`]
    /// appends every raced result to a per-design write-ahead journal as it
    /// lands (snapshots become the compaction artifact), and
    /// [`DurabilityMode::Strict`] additionally fsyncs every append.
    pub durability: DurabilityMode,
    /// Group-commit batch of the journal: fsync after every Nth append.
    /// Ignored in [`DurabilityMode::Strict`], which forces 1.
    pub journal_fsync_batch: u64,
    /// Compaction threshold: once a design's journal grows past this many
    /// bytes, the next completed batch snapshots the design and truncates
    /// the journal back to its header.
    pub journal_compact_bytes: u64,
    /// Where post-mortem bundles go. `None` (the default) puts them under
    /// `<data_dir>/postmortem`; with no data directory either, dumps are
    /// disabled.
    pub postmortem_dir: Option<PathBuf>,
    /// Post-mortem bundle caps: at most this many bundles are kept
    /// (oldest-first eviction).
    pub postmortem_max_dumps: usize,
    /// Post-mortem bundle caps: at most this many total bytes of bundles
    /// are kept (oldest-first eviction).
    pub postmortem_max_bytes: u64,
    /// Readiness capacity: `health` reports not-ready while the queue holds
    /// more than this many jobs (submissions are still accepted — this is
    /// the signal a load balancer drains on, not an admission gate).
    pub max_queue_depth: usize,
    /// Service-level objective: `health` reports degraded when the rolling
    /// error rate over [`ServerConfig::slo_window`] exceeds this fraction.
    pub slo_error_rate: f64,
    /// Service-level objective: `health` reports degraded when the rolling
    /// p99 request latency over [`ServerConfig::slo_window`] exceeds this.
    pub slo_p99: Duration,
    /// The sliding window behind the `health` op's rolling error-rate and
    /// p99-latency objectives (and the autosave-failure recency check).
    pub slo_window: Duration,
}

impl ServerConfig {
    /// Defaults: loopback on port 7117, no persistence, default service, 1 s
    /// slow-request threshold, 120 s read / 30 s write socket timeouts, 256
    /// connections, 60 s wait bound, 30 s shutdown drain.
    pub fn new() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7117".to_string(),
            data_dir: None,
            service: ServiceConfig::default(),
            slow_request_threshold: Duration::from_secs(1),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            retry_after: Duration::from_millis(200),
            wait_timeout: Duration::from_secs(60),
            subscribe_queue: 256,
            subscribe_interval: Duration::from_millis(250),
            drain_timeout: Duration::from_secs(30),
            faults: FaultPlan::disabled(),
            durability: DurabilityMode::default(),
            journal_fsync_batch: 32,
            journal_compact_bytes: 1 << 20,
            postmortem_dir: None,
            postmortem_max_dumps: DEFAULT_MAX_DUMPS,
            postmortem_max_bytes: DEFAULT_MAX_BYTES,
            max_queue_depth: 1024,
            slo_error_rate: 0.25,
            slo_p99: Duration::from_secs(5),
            slo_window: Duration::from_secs(60),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// A counted gate: requests enter and exit, shutdown waits (on a condition
/// variable, not a sleep poll) until the count reaches zero or a deadline
/// passes.
struct Gate {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            count: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn enter(&self) {
        *self.count.lock_recover() += 1;
    }

    fn exit(&self) {
        let mut count = self.count.lock_recover();
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.cv.notify_all();
        }
    }

    /// Waits until the gate is empty; `false` when the deadline passed with
    /// requests still inside.
    fn wait_idle(&self, deadline: Instant) -> bool {
        let mut count = self.count.lock_recover();
        loop {
            if *count == 0 {
                return true;
            }
            let (guard, timed_out) = self.cv.wait_deadline_recover(count, deadline);
            count = guard;
            if timed_out {
                return *count == 0;
            }
        }
    }
}

/// One finished request in the rolling SLO window.
#[derive(Debug, Clone, Copy)]
struct SloSample {
    at: Instant,
    wall_nanos: u64,
    error: bool,
}

/// The sliding window behind the `health` op's objectives: every finished
/// request pushes a sample, reads prune anything older than the window and
/// fold error rate and p99 latency over what remains. Bounded by pruning on
/// every push, so an idle-then-bursty server never accumulates unboundedly.
struct SloWindow {
    samples: Mutex<VecDeque<SloSample>>,
    window: Duration,
}

impl SloWindow {
    fn new(window: Duration) -> Self {
        SloWindow {
            samples: Mutex::new(VecDeque::new()),
            window,
        }
    }

    fn push(&self, wall_nanos: u64, error: bool) {
        let now = Instant::now();
        let mut samples = self.samples.lock_recover();
        while samples
            .front()
            .is_some_and(|s| now.duration_since(s.at) > self.window)
        {
            samples.pop_front();
        }
        samples.push_back(SloSample {
            at: now,
            wall_nanos,
            error,
        });
    }

    /// (requests, error rate, p99 latency) over the live window.
    fn fold(&self) -> (usize, f64, Duration) {
        let now = Instant::now();
        let samples = self.samples.lock_recover();
        let live: Vec<&SloSample> = samples
            .iter()
            .filter(|s| now.duration_since(s.at) <= self.window)
            .collect();
        if live.is_empty() {
            return (0, 0.0, Duration::ZERO);
        }
        let errors = live.iter().filter(|s| s.error).count();
        let mut walls: Vec<u64> = live.iter().map(|s| s.wall_nanos).collect();
        walls.sort_unstable();
        let rank = ((walls.len() as f64) * 0.99).ceil() as usize;
        let p99 = walls[rank.saturating_sub(1).min(walls.len() - 1)];
        (
            live.len(),
            errors as f64 / live.len() as f64,
            Duration::from_nanos(p99),
        )
    }
}

struct ServerState {
    service: VerificationService,
    /// Canonical netlist per design, for monitor-name resolution and
    /// snapshot assembly (the service's own registry is private to it).
    designs: Mutex<HashMap<DesignHash, Netlist>>,
    data_dir: Option<PathBuf>,
    shutting_down: AtomicBool,
    loaded_snapshots: AtomicUsize,
    /// Snapshot files present at boot that failed validation and were
    /// skipped (the server booted cold for those designs).
    snapshots_rejected_at_boot: AtomicUsize,
    /// Journal records replayed into service state at boot.
    boot_replayed_records: AtomicU64,
    /// Journal bytes quarantined at boot (torn tails and unreadable files).
    journal_quarantined_bytes: AtomicU64,
    /// The write-ahead journal sink, when [`ServerConfig::durability`]
    /// journals and a data directory is configured. The service holds the
    /// same sink behind its [`DurabilityHook`]; the server side drives
    /// compaction and shutdown truncation.
    journal: Option<Arc<JournalSink>>,
    durability: DurabilityMode,
    journal_compact_bytes: u64,
    /// The bound address, kept so `shutdown` can wake the blocking accept
    /// loop with a loopback connection.
    addr: SocketAddr,
    /// Live connection count against [`ServerConfig::max_connections`].
    connections: AtomicUsize,
    /// Requests currently being dispatched or having their reply written.
    /// The shutdown path waits for this gate so no client loses an
    /// already-earned reply (or its autosave) to the process exiting.
    active: Gate,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_connections: usize,
    retry_after: Duration,
    wait_timeout: Duration,
    subscribe_queue: usize,
    subscribe_interval: Duration,
    drain_timeout: Duration,
    faults: FaultPlan,
    /// The shared metrics registry: the service and every portfolio it races
    /// write into it, the server adds per-op counters and latency
    /// histograms, and the `metrics` op exposes the whole thing.
    metrics: Arc<MetricsRegistry>,
    /// Server-level tracer: one span per connection, one event per request.
    tracer: Tracer,
    /// Checker options for on-demand `trace_check` runs (the same options
    /// the service's portfolio gives its ATPG engine).
    checker_options: CheckerOptions,
    /// Threshold of the slow-request log.
    slow_request_threshold: Duration,
    /// The always-on flight recorder every layer of the stack writes into;
    /// the `events` op tails it, post-mortem bundles snapshot it.
    recorder: Arc<FlightRecorder>,
    /// The post-mortem dump writer, when a dump directory is configured.
    postmortem: Option<Arc<PostmortemWriter>>,
    /// When the server booted (the `stats`/`health` uptime).
    started: Instant,
    /// Connection ids for the slow-request log and Server-layer recorder
    /// events (ids start at 1; 0 means "no connection").
    next_conn: AtomicU64,
    /// The rolling request window behind the `health` op's objectives.
    slo: SloWindow,
    /// Readiness capacity for the `health` op (see
    /// [`ServerConfig::max_queue_depth`]).
    max_queue_depth: usize,
    /// SLO objectives for the `health` op.
    slo_error_rate: f64,
    slo_p99: Duration,
    /// Worker-pool size the service was configured with, the quorum the
    /// `health` op compares `workers_alive` against.
    configured_workers: usize,
    /// When the most recent autosave failure happened (durability recency
    /// for the `health` op).
    last_autosave_failure: Mutex<Option<Instant>>,
}

/// A running verification server.
///
/// [`Server::bind`] loads any snapshots found in the data directory (a
/// restarted server answers repeat queries warm), then [`Server::run`]
/// accepts connections until a `shutdown` request arrives; the shutdown path
/// drains in-flight jobs and saves every design before returning.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and warm-loads persisted state.
    ///
    /// Snapshot files that fail validation (truncated, corrupt, foreign) are
    /// skipped with a diagnostic on stderr — a bad snapshot costs warmth,
    /// never integrity.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the address or creating the data directory.
    pub fn bind(mut config: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(MetricsRegistry::new());
        // The flight recorder is always on: every layer below (service
        // workers, portfolio races, core search, journal sink) gets a handle
        // before the service boots, so even the boot replay is recorded.
        let recorder = Arc::new(FlightRecorder::new(8192));
        config.service.recorder = RecorderHandle::to(Arc::clone(&recorder));
        let postmortem_dir = config
            .postmortem_dir
            .clone()
            .or_else(|| config.data_dir.as_ref().map(|dir| dir.join("postmortem")));
        let postmortem = postmortem_dir.map(|dir| {
            Arc::new(PostmortemWriter::new(
                dir,
                config.postmortem_max_dumps,
                config.postmortem_max_bytes,
                Arc::clone(&recorder),
                Arc::clone(&metrics),
            ))
        });
        if let Some(writer) = &postmortem {
            config.service.fault_report = FaultReportHook::new(Arc::clone(writer) as _);
        }
        let configured_workers = config.service.workers.max(1);
        let checker_options = config.service.portfolio.checker.clone();
        // Arm the write-ahead journal before the service exists, so every
        // raced result the service ever completes passes through the sink.
        let journal = match &config.data_dir {
            Some(dir) if config.durability.journals() => {
                let batch = match config.durability {
                    DurabilityMode::Strict => 1,
                    _ => config.journal_fsync_batch.max(1),
                };
                let sink = Arc::new(
                    JournalSink::new(dir, batch, config.faults.clone())
                        .with_metrics(Arc::clone(&metrics))
                        .with_recorder(RecorderHandle::to(Arc::clone(&recorder))),
                );
                config.service.durability = DurabilityHook::new(Arc::clone(&sink) as _);
                Some(sink)
            }
            _ => None,
        };
        let state = Arc::new(ServerState {
            service: VerificationService::with_metrics(config.service, Arc::clone(&metrics)),
            designs: Mutex::new(HashMap::new()),
            data_dir: config.data_dir,
            shutting_down: AtomicBool::new(false),
            loaded_snapshots: AtomicUsize::new(0),
            snapshots_rejected_at_boot: AtomicUsize::new(0),
            boot_replayed_records: AtomicU64::new(0),
            journal_quarantined_bytes: AtomicU64::new(0),
            journal,
            durability: config.durability,
            journal_compact_bytes: config.journal_compact_bytes,
            addr,
            connections: AtomicUsize::new(0),
            active: Gate::new(),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_connections: config.max_connections.max(1),
            retry_after: config.retry_after,
            wait_timeout: config.wait_timeout,
            subscribe_queue: config.subscribe_queue.max(1),
            subscribe_interval: config.subscribe_interval.max(Duration::from_millis(1)),
            drain_timeout: config.drain_timeout,
            faults: config.faults,
            metrics,
            tracer: Tracer::new(16_384),
            checker_options,
            slow_request_threshold: config.slow_request_threshold,
            recorder,
            postmortem,
            started: Instant::now(),
            next_conn: AtomicU64::new(1),
            slo: SloWindow::new(config.slo_window),
            max_queue_depth: config.max_queue_depth,
            slo_error_rate: config.slo_error_rate,
            slo_p99: config.slo_p99,
            configured_workers,
            last_autosave_failure: Mutex::new(None),
        });
        load_all_snapshots(&state);
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's failure to report its address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of snapshots successfully loaded at boot.
    pub fn loaded_snapshots(&self) -> usize {
        self.state.loaded_snapshots.load(Ordering::Relaxed)
    }

    /// Number of snapshot files rejected at boot (corrupt, torn, foreign).
    pub fn snapshots_rejected_at_boot(&self) -> usize {
        self.state
            .snapshots_rejected_at_boot
            .load(Ordering::Relaxed)
    }

    /// Number of journal records replayed into service state at boot.
    pub fn boot_replayed_records(&self) -> u64 {
        self.state.boot_replayed_records.load(Ordering::Relaxed)
    }

    /// Journal bytes quarantined at boot (torn tails, unreadable files).
    pub fn journal_quarantined_bytes(&self) -> u64 {
        self.state.journal_quarantined_bytes.load(Ordering::Relaxed)
    }

    /// Serves connections until a `shutdown` request completes. Each
    /// connection gets its own thread; the accept loop blocks (no polling)
    /// and is woken by a loopback connection when `shutdown` flips the flag.
    /// On exit every in-flight job that finished within the drain budget has
    /// been saved.
    pub fn run(self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.state.shutting_down.load(Ordering::Acquire) {
                        // Likely the shutdown wake-up connection; either way
                        // no new connection is served past the flag.
                        drop(stream);
                        break;
                    }
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) => {
                    if self.state.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    eprintln!("wlac-server: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        // Connection threads are detached, so wait for every in-flight
        // request (a reply mid-write on another connection, its autosave)
        // to finish before the final sweep; readers idling on their sockets
        // don't count and don't block exit. Bounded so a pathological
        // handler cannot wedge shutdown forever.
        let deadline = Instant::now() + self.state.drain_timeout;
        if !self.state.active.wait_idle(deadline) {
            eprintln!("wlac-server: shutdown with requests still in flight");
        }
        // The shutdown request already drained and saved; a second pass here
        // catches anything submitted on other connections in the window
        // between that drain and the accept loop noticing the flag.
        if !self.state.service.drain_timeout(self.state.drain_timeout) {
            eprintln!("wlac-server: drain timed out; unfinished jobs abandoned");
        }
        save_all_designs(&self.state);
    }
}

fn load_all_snapshots(state: &ServerState) {
    let Some(dir) = &state.data_dir else {
        return;
    };
    // Sweep the temp-file debris of any writer that died mid-save (kill -9
    // during autosave) before scanning; the published snapshots themselves
    // are untouched by a torn write.
    match clean_stale_temp_files(dir) {
        Ok(0) => {}
        Ok(n) => eprintln!("wlac-server: removed {n} stale snapshot temp file(s)"),
        Err(e) => eprintln!(
            "wlac-server: temp-file sweep of {} failed: {e}",
            dir.display()
        ),
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("wlac-server: cannot scan {}: {e}", dir.display());
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wlacsnap") {
            continue;
        }
        let snapshot = match load_snapshot_with_fallback(&path) {
            Ok((snapshot, from_backup)) => {
                if from_backup {
                    state
                        .metrics
                        .counter("server_snapshot_fallbacks_total")
                        .inc();
                    eprintln!(
                        "wlac-server: {} was unreadable; booted from last-good backup",
                        path.display()
                    );
                }
                snapshot
            }
            Err(e) => {
                eprintln!("wlac-server: skipping snapshot {}: {e}", path.display());
                note_rejected_snapshot(state, &format!("snapshot {}: {e}", path.display()));
                continue;
            }
        };
        let design = state.service.register_design(&snapshot.netlist);
        if design != snapshot.knowledge.design() {
            // decode_snapshot re-derives the hash, so this means the service
            // and the snapshot disagree about identity — do not trust it.
            eprintln!(
                "wlac-server: skipping snapshot {}: design hash mismatch",
                path.display()
            );
            note_rejected_snapshot(
                state,
                &format!("snapshot {}: design hash mismatch", path.display()),
            );
            continue;
        }
        if let Err(e) = state.service.import_knowledge(design, &snapshot.knowledge) {
            eprintln!(
                "wlac-server: snapshot {} failed knowledge validation: {e}",
                path.display()
            );
            note_rejected_snapshot(
                state,
                &format!("snapshot {}: knowledge validation: {e}", path.display()),
            );
            continue;
        }
        if let Err(e) = state.service.import_verdicts(design, &snapshot.verdicts) {
            eprintln!(
                "wlac-server: snapshot {} failed verdict validation: {e}",
                path.display()
            );
            note_rejected_snapshot(
                state,
                &format!("snapshot {}: verdict validation: {e}", path.display()),
            );
            continue;
        }
        state
            .designs
            .lock_recover()
            .insert(design, snapshot.netlist);
        state.loaded_snapshots.fetch_add(1, Ordering::Relaxed);
    }
    replay_journals(state);
}

/// Books one snapshot file that was present at boot but could not be
/// trusted: the server boots cold for that design (a structured warning
/// already went to stderr), the rejection is visible in stats and metrics
/// instead of silent, and a post-mortem bundle captures the boot-time
/// evidence.
fn note_rejected_snapshot(state: &ServerState, detail: &str) {
    state
        .snapshots_rejected_at_boot
        .fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .counter("server_snapshots_rejected_at_boot_total")
        .inc();
    dump_postmortem(state, "snapshot_rejected", detail, Vec::new());
}

/// Writes one server-local post-mortem bundle (durability fault paths; the
/// service's own faults dump through its [`FaultReportHook`]).
fn dump_postmortem(state: &ServerState, fault: &str, detail: &str, extra: Vec<(&str, Json)>) {
    if let Some(writer) = &state.postmortem {
        writer.dump(fault, detail, 0, extra);
    }
}

/// Replays every per-design write-ahead journal in the data directory on
/// top of whatever the snapshots restored. Journals are replayed in every
/// durability mode — the records were acknowledged to clients, and a mode
/// change must not forfeit them. A torn tail (or a wholly unreadable file)
/// costs exactly the bytes past the longest valid prefix, never the boot:
/// those bytes are counted as quarantined and everything before them is
/// restored.
fn replay_journals(state: &ServerState) {
    let Some(dir) = &state.data_dir else {
        return;
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return, // already diagnosed by the snapshot scan
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("wlacjournal") {
            continue;
        }
        let replay = match read_journal(&path) {
            Ok(replay) => replay,
            Err(e) => {
                // Header unusable: quarantine the whole file's bytes. The
                // sink will move it aside if this design races again.
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                note_quarantined_bytes(state, bytes);
                eprintln!("wlac-server: skipping journal {}: {e}", path.display());
                dump_postmortem(
                    state,
                    "journal_tail_quarantined",
                    &format!("journal {} unreadable: {e}", path.display()),
                    vec![("quarantined_bytes", Json::num(bytes))],
                );
                continue;
            }
        };
        note_quarantined_bytes(state, replay.quarantined_bytes);
        if replay.quarantined_bytes > 0 {
            eprintln!(
                "wlac-server: journal {} had a torn tail; quarantined {} byte(s), \
                 replaying the {} record(s) before it",
                path.display(),
                replay.quarantined_bytes,
                replay.records.len()
            );
            dump_postmortem(
                state,
                "journal_tail_quarantined",
                &format!(
                    "journal {} had a torn tail; replayed {} record(s) before it",
                    path.display(),
                    replay.records.len()
                ),
                vec![
                    ("quarantined_bytes", Json::num(replay.quarantined_bytes)),
                    ("replayed_records", Json::num(replay.records.len() as u64)),
                ],
            );
            // Cut the rejected tail out of the file now (preserved beside
            // it), so size-based views of the journal — the metadata
            // fallback behind the compaction trigger — count only valid
            // records. Failure is harmless: recovery re-quarantines.
            if let Err(e) = truncate_to_valid(&path, &replay) {
                eprintln!(
                    "wlac-server: could not truncate quarantined tail of {}: {e}",
                    path.display()
                );
            }
        }
        // The journal header carries the canonical netlist — and is only
        // accepted when the netlist reproduces the recorded hash — so a
        // design that never reached its first snapshot still comes back
        // warm, under the same identity it was acknowledged as.
        let design = state.service.register_design(&replay.netlist);
        debug_assert_eq!(design, replay.design, "parse_header checked this");
        let mut knowledge = KnowledgeBase::new(design);
        let mut verdicts = Vec::with_capacity(replay.records.len());
        for record in &replay.records {
            for clause in &record.clauses {
                knowledge.clauses.insert(clause);
            }
            for &(net, value, count) in &record.estg_delta {
                knowledge.search.estg.record_conflicts(net, value, count);
            }
            knowledge.history.record(&record.ran, record.winner);
            if let Some(verdict) = &record.verdict {
                verdicts.push(verdict.clone());
            }
        }
        // The import path re-validates every clause and verdict exactly as
        // it does for snapshots and merges on top of the restored state;
        // journaled deltas over an already-compacted snapshot are additive,
        // so replaying both never double-counts a verdict or clause.
        if let Err(e) = state.service.import_knowledge(design, &knowledge) {
            eprintln!(
                "wlac-server: journal {} failed knowledge validation: {e}",
                path.display()
            );
            continue;
        }
        if let Err(e) = state.service.import_verdicts(design, &verdicts) {
            eprintln!(
                "wlac-server: journal {} failed verdict validation: {e}",
                path.display()
            );
            continue;
        }
        state
            .designs
            .lock_recover()
            .entry(design)
            .or_insert(replay.netlist);
        let replayed = replay.records.len() as u64;
        state
            .boot_replayed_records
            .fetch_add(replayed, Ordering::Relaxed);
        state
            .metrics
            .counter("server_boot_replayed_records_total")
            .add(replayed);
    }
}

fn note_quarantined_bytes(state: &ServerState, bytes: u64) {
    if bytes == 0 {
        return;
    }
    state
        .journal_quarantined_bytes
        .fetch_add(bytes, Ordering::Relaxed);
    state
        .metrics
        .counter("server_journal_quarantined_bytes_total")
        .add(bytes);
}

fn assemble_snapshot(state: &ServerState, design: DesignHash) -> Option<Snapshot> {
    let netlist = state.designs.lock_recover().get(&design)?.clone();
    Some(Snapshot {
        netlist,
        knowledge: state.service.export_knowledge(design)?,
        verdicts: state.service.export_verdicts(design)?,
    })
}

fn save_design(state: &ServerState, design: DesignHash) -> bool {
    let Some(dir) = &state.data_dir else {
        return false;
    };
    let Some(snapshot) = assemble_snapshot(state, design) else {
        return false;
    };
    let path = dir.join(snapshot_file_name(design));
    // Degraded mode by design: an autosave failure is logged and counted,
    // and the server keeps answering from memory — durability degrades,
    // service does not.
    match save_snapshot_faulted(&path, &snapshot, &state.faults) {
        Ok(()) => {
            state.metrics.counter("server_autosaves_total").inc();
            state.recorder.record(
                RecorderLayer::Persist,
                RecorderKind::Persisted,
                0,
                design.0,
                0,
            );
            // Snapshot mode replays boot-leftover journals (from an earlier
            // journal-mode run) but appends nothing: this snapshot now holds
            // everything they carried, so drop them instead of replaying
            // them forever. Journal mode hands the same decision to
            // `compact_design`, which must first rule out racing appends.
            if state.journal.is_none() {
                remove_stale_journal(dir, design);
            }
            true
        }
        Err(e) => {
            state
                .metrics
                .counter("server_autosave_failures_total")
                .inc();
            eprintln!("wlac-server: autosave of {design} failed (still serving from memory): {e}");
            *state.last_autosave_failure.lock_recover() = Some(Instant::now());
            dump_postmortem(
                state,
                "autosave_failure",
                &format!("autosave of {design} failed: {e}"),
                vec![("design", Json::str(design_to_wire(design)))],
            );
            false
        }
    }
}

/// Compacts one design: snapshot it, then truncate its journal back to the
/// header. The truncation happens **only after** the snapshot landed — a
/// crash (or injected fault) anywhere during the save leaves the journal
/// intact — and **only if** no append raced the save: a record landing
/// while the snapshot's state was being exported or written may not be in
/// that snapshot, and truncating would orphan it. The append token is
/// captured before the export inside `save_design`, so any such record
/// makes `reset` refuse; the journal stays (replay over the new snapshot is
/// idempotent) and the next threshold crossing retries.
fn compact_design(state: &ServerState, design: DesignHash) {
    let Some(sink) = &state.journal else {
        return;
    };
    let token = sink.append_token(design);
    if !save_design(state, design) {
        return;
    }
    if sink.reset(design, token) {
        state
            .metrics
            .counter("server_journal_compactions_total")
            .inc();
    } else {
        state
            .metrics
            .counter("server_journal_compactions_deferred_total")
            .inc();
    }
}

fn save_all_designs(state: &ServerState) -> usize {
    let designs: Vec<DesignHash> = state.designs.lock_recover().keys().copied().collect();
    for design in &designs {
        match &state.journal {
            // Journal mode: shutdown is a full compaction — every design
            // ends the session as a snapshot plus an empty journal.
            Some(_) => compact_design(state, *design),
            None => {
                save_design(state, *design);
            }
        }
    }
    designs.len()
}

/// Decrements the live-connection count when a connection thread exits, no
/// matter how it exits.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Back-pressure: over the cap, shed with a structured reply carrying a
    // retry hint — the client backs off and reconnects instead of queueing
    // invisibly behind an exhausted thread pool.
    let _guard = ConnGuard(&state.connections);
    if state.connections.fetch_add(1, Ordering::AcqRel) + 1 > state.max_connections {
        state
            .metrics
            .counter("server_connections_rejected_total")
            .inc();
        let reply = error_reply_with_retry(
            ErrorCode::Overloaded,
            format!("connection cap ({}) reached", state.max_connections),
            state.retry_after,
        );
        writer.write_all(format!("{reply}\n").as_bytes()).ok();
        writer.flush().ok();
        return;
    }
    // A silent or stalled peer must not hold a connection thread forever.
    stream.set_read_timeout(state.read_timeout).ok();
    stream.set_write_timeout(state.write_timeout).ok();
    state.metrics.counter("server_connections_total").inc();
    let conn = state.next_conn.fetch_add(1, Ordering::Relaxed);
    let connection = state.tracer.span_start("connection", SpanId::ROOT);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // client went away or idled past the timeout
        };
        if line.trim().is_empty() {
            continue;
        }
        // `subscribe` escapes the request/reply shape: it pushes a stream of
        // frames until the batch completes or the subscriber is shed, so it
        // is handled here, outside `dispatch`, with the socket in hand. The
        // in-flight gate is deliberately not held across the stream — a
        // subscriber idling on a long batch must not stall shutdown; the
        // stream notices the drain flag and ends instead.
        if wants_subscribe(&line) {
            let started = Instant::now();
            match subscribe_connection(state, &line, &stream) {
                SubscribeOutcome::Reject(reply) => {
                    record_request(
                        state,
                        connection,
                        conn,
                        "subscribe",
                        &reply,
                        started.elapsed(),
                    );
                    let sent = writer
                        .write_all(format!("{reply}\n").as_bytes())
                        .and_then(|()| writer.flush());
                    if sent.is_err() {
                        break;
                    }
                }
                SubscribeOutcome::Streamed { summary, close } => {
                    record_request(
                        state,
                        connection,
                        conn,
                        "subscribe",
                        &summary,
                        started.elapsed(),
                    );
                    if close {
                        break;
                    }
                }
            }
            continue;
        }
        state.active.enter();
        let started = Instant::now();
        let (reply, op) = dispatch(state, &line);
        let elapsed = started.elapsed();
        record_request(state, connection, conn, op, &reply, elapsed);
        let sent = writer
            .write_all(format!("{reply}\n").as_bytes())
            .and_then(|()| writer.flush());
        state.active.exit();
        if sent.is_err() {
            break;
        }
    }
    state.tracer.span_end(connection, "connection");
}

/// `true` when the frame is a `subscribe` request (cheap pre-parse; a frame
/// that fails to parse here is not a subscribe and gets its structured
/// `bad_json` from the normal dispatch path).
fn wants_subscribe(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|frame| {
            frame
                .get("op")
                .and_then(Json::as_str)
                .map(|op| op == "subscribe")
        })
        .unwrap_or(false)
}

/// How a `subscribe` request ended, for the connection loop.
enum SubscribeOutcome {
    /// The request never became a stream: answer `reply` like any other op
    /// and keep serving the connection.
    Reject(Json),
    /// The stream ran and wrote its own frames; `summary` exists only for
    /// request accounting. `close` means the socket is no longer usable
    /// (slow-consumer shed, write failure, or server shutdown).
    Streamed { summary: Json, close: bool },
}

/// Bounds of a subscriber's requested progress-tick interval.
const SUBSCRIBE_MIN_INTERVAL: Duration = Duration::from_millis(1);
const SUBSCRIBE_MAX_INTERVAL: Duration = Duration::from_secs(60);

/// Validates a `subscribe` request and, when it names a live batch, streams
/// it (see [`stream_subscription`]).
fn subscribe_connection(state: &ServerState, line: &str, stream: &TcpStream) -> SubscribeOutcome {
    let frame = match Json::parse(line) {
        Ok(frame) => frame,
        Err(e) => return SubscribeOutcome::Reject(error_reply(ErrorCode::BadJson, e.to_string())),
    };
    let batch = match batch_from(&frame) {
        Ok(batch) => batch,
        Err(reply) => return SubscribeOutcome::Reject(reply),
    };
    if state.service.poll(batch).is_none() {
        return SubscribeOutcome::Reject(error_reply(
            ErrorCode::UnknownBatch,
            format!("no batch {}", batch.raw()),
        ));
    }
    let interval = frame
        .get("interval_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis)
        .unwrap_or(state.subscribe_interval)
        .clamp(SUBSCRIBE_MIN_INTERVAL, SUBSCRIBE_MAX_INTERVAL);
    stream_subscription(state, batch, interval, stream)
}

/// The producer side of one `subscribe` stream: pushes frames into the
/// bounded queue a dedicated writer thread drains to the socket. The
/// producer pulls all of its data from the service's lock-free progress
/// cells and the batch table — it never blocks a worker — and a full queue
/// (a subscriber that stopped reading) sheds the subscriber by closing its
/// socket, in the same spirit as the connection-cap `overloaded` shed.
struct SubscribePush<'a> {
    state: &'a ServerState,
    stream: &'a TcpStream,
    tx: SyncSender<String>,
    pushes: u64,
    shed: bool,
    dead: bool,
}

impl SubscribePush<'_> {
    /// `false` once the stream is over (shed or the writer went away).
    fn push(&mut self, frame: &Json) -> bool {
        if self.shed || self.dead {
            return false;
        }
        match self.tx.try_send(format!("{frame}\n")) {
            Ok(()) => {
                self.pushes += 1;
                self.state
                    .metrics
                    .counter("server_subscribe_pushes_total")
                    .inc();
                true
            }
            Err(TrySendError::Full(_)) => {
                // The peer stopped reading, so no structured reply can reach
                // it — count the shed, close both directions and let the
                // client observe EOF mid-stream.
                self.state
                    .metrics
                    .counter("server_subscribe_dropped_total")
                    .inc();
                self.shed = true;
                self.stream.shutdown(Shutdown::Both).ok();
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                // The writer thread exited on a write error: the peer is
                // gone (or its socket stalled past the write timeout).
                self.dead = true;
                false
            }
        }
    }

    fn live(&self) -> bool {
        !self.shed && !self.dead
    }
}

/// Streams one batch: a `subscribed` acknowledgement, `job_started` once
/// per job as it is dequeued, periodic `progress` frames for every job
/// still racing, and — the ordering contract observers rely on — for every
/// completed job one final `progress` frame (its closing effort counters,
/// bound always nonzero) immediately followed by its `verdict` frame, then
/// one `batch_done` frame. A batch that already completed replays its final
/// progress and verdicts immediately, so late subscribers (`wlac-client
/// watch` after the fact) still get the full story.
fn stream_subscription(
    state: &ServerState,
    batch: BatchId,
    interval: Duration,
    stream: &TcpStream,
) -> SubscribeOutcome {
    let (tx, rx) = std::sync::mpsc::sync_channel::<String>(state.subscribe_queue);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            return SubscribeOutcome::Streamed {
                summary: error_reply(ErrorCode::Internal, "socket clone failed"),
                close: true,
            }
        }
    };
    let writer = std::thread::spawn(move || {
        let mut writer = writer_stream;
        while let Ok(frame) = rx.recv() {
            if writer
                .write_all(frame.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                return; // dropping `rx` tells the producer the peer is gone
            }
        }
    });
    let mut push = SubscribePush {
        state,
        stream,
        tx,
        pushes: 0,
        shed: false,
        dead: false,
    };
    let shutdown = stream_events(state, batch, interval, &mut push);
    let SubscribePush {
        pushes,
        shed,
        dead,
        tx,
        ..
    } = push;
    // `tx` must drop *before* the join: a `..` rest pattern keeps unmatched
    // fields alive to end of scope, and the writer only exits once every
    // sender is gone (it drains what was queued first).
    drop(tx);
    writer.join().ok();
    let summary = if shed {
        error_reply(ErrorCode::Overloaded, "subscriber stopped reading; shed")
    } else {
        ok_reply(vec![
            ("batch", Json::num(batch.raw())),
            ("pushed", Json::num(pushes)),
        ])
    };
    SubscribeOutcome::Streamed {
        summary,
        close: shed || dead || shutdown,
    }
}

/// The event loop of one subscription; `true` when it ended because the
/// server is draining.
fn stream_events(
    state: &ServerState,
    batch: BatchId,
    interval: Duration,
    push: &mut SubscribePush<'_>,
) -> bool {
    let total = match state.service.poll(batch) {
        Some(status) => status.total,
        None => return false,
    };
    let acknowledgement = ok_reply(vec![
        ("event", Json::str("subscribed")),
        ("batch", Json::num(batch.raw())),
        ("total", Json::num(total as u64)),
    ]);
    if !push.push(&acknowledgement) {
        return false;
    }
    let mut announced = vec![false; total];
    let mut delivered = vec![false; total];
    loop {
        // Deliver every newly completed slot: final progress, then verdict.
        let Some(slots) = state.service.batch_slots(batch) else {
            // Another client retired the batch (`results`/`wait`) while we
            // streamed; nothing more can be observed.
            return false;
        };
        for (index, slot) in slots.iter().enumerate() {
            if delivered[index] {
                continue;
            }
            let Some((result, probe)) = slot else {
                continue;
            };
            let final_progress = ok_reply(vec![
                ("event", Json::str("progress")),
                ("batch", Json::num(batch.raw())),
                ("index", Json::num(index as u64)),
                ("property", Json::str(result.property.clone())),
                ("elapsed_ms", Json::Num(result.wall.as_secs_f64() * 1e3)),
                (
                    "leading",
                    result
                        .winner
                        .map(|w| Json::str(w.to_string()))
                        .unwrap_or(Json::Null),
                ),
                ("probe", probe_to_wire(probe)),
            ]);
            let verdict = ok_reply(vec![
                ("event", Json::str("verdict")),
                ("batch", Json::num(batch.raw())),
                ("index", Json::num(index as u64)),
                ("result", job_result_to_wire(result)),
            ]);
            if !push.push(&final_progress) || !push.push(&verdict) {
                return false;
            }
            delivered[index] = true;
        }
        let completed = delivered.iter().filter(|d| **d).count();
        if completed == total {
            let done = ok_reply(vec![
                ("event", Json::str("batch_done")),
                ("batch", Json::num(batch.raw())),
                ("total", Json::num(total as u64)),
            ]);
            push.push(&done);
            return false;
        }
        if state.shutting_down.load(Ordering::Acquire) {
            return true;
        }
        // Live progress of everything still racing in this batch.
        if let Some(progress) = state.service.batch_progress(batch) {
            for job in &progress.running {
                if job.index < total && !announced[job.index] {
                    announced[job.index] = true;
                    let started = ok_reply(vec![
                        ("event", Json::str("job_started")),
                        ("batch", Json::num(batch.raw())),
                        ("index", Json::num(job.index as u64)),
                        ("job", Json::num(job.job)),
                        ("property", Json::str(job.property.clone())),
                        ("design", Json::str(design_to_wire(job.design))),
                    ]);
                    if !push.push(&started) {
                        return false;
                    }
                }
                let frame = ok_reply(vec![
                    ("event", Json::str("progress")),
                    ("batch", Json::num(batch.raw())),
                    ("index", Json::num(job.index as u64)),
                    ("property", Json::str(job.property.clone())),
                    ("elapsed_ms", Json::Num(job.elapsed.as_secs_f64() * 1e3)),
                    (
                        "leading",
                        job.leading
                            .map(|e| Json::str(e.to_string()))
                            .unwrap_or(Json::Null),
                    ),
                    ("probe", probe_to_wire(&job.probe)),
                ]);
                if !push.push(&frame) {
                    return false;
                }
            }
        }
        if !push.live() {
            return false;
        }
        // Sleep until a job completes or the next tick is due.
        if state
            .service
            .wait_batch_change(batch, completed, interval)
            .is_none()
        {
            return false;
        }
    }
}

/// Books one finished request: per-op counter and latency histogram, a
/// per-code error counter when the reply is a failure, a request event in
/// the connection span, a Server-layer flight-recorder event, a rolling SLO
/// sample, and the slow-request log line (carrying the connection id, so a
/// slow request is attributable to its client).
fn record_request(
    state: &ServerState,
    connection: SpanId,
    conn: u64,
    op: &'static str,
    reply: &Json,
    elapsed: Duration,
) {
    let nanos = elapsed.as_nanos() as u64;
    state
        .metrics
        .counter(&format!("server_requests_{op}_total"))
        .inc();
    state
        .metrics
        .histogram(&format!("server_op_{op}_wall_ns"))
        .record(nanos);
    let error_code = reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str);
    if let Some(code) = error_code {
        state
            .metrics
            .counter(&format!("server_errors_{code}_total"))
            .inc();
    }
    state.tracer.event(op, connection, nanos);
    // The recorder event stamps the connection id as its job and the op (as
    // its KNOWN_OPS index) plus the wall clock as payload: `events` can tail
    // the request loop without parsing the slow-request log.
    let op_index = KNOWN_OPS.iter().position(|k| *k == op).unwrap_or(0) as u64;
    state.recorder.record(
        RecorderLayer::Server,
        RecorderKind::End,
        conn,
        op_index,
        nanos,
    );
    state.slo.push(nanos, error_code.is_some());
    if elapsed >= state.slow_request_threshold {
        eprintln!(
            "wlac-server: slow request conn={conn} op={op} wall_ms={:.1} outcome={}",
            elapsed.as_secs_f64() * 1e3,
            error_code.unwrap_or("ok"),
        );
    }
}

fn dispatch(state: &ServerState, line: &str) -> (Json, &'static str) {
    let frame = match Json::parse(line) {
        Ok(frame) => frame,
        Err(e) => return (error_reply(ErrorCode::BadJson, e.to_string()), "invalid"),
    };
    let Some(op) = frame.get("op").and_then(Json::as_str) else {
        return (
            error_reply(ErrorCode::BadRequest, "missing string member `op`"),
            "invalid",
        );
    };
    if state.shutting_down.load(Ordering::Acquire)
        && matches!(op, "register_design" | "submit_batch" | "import_knowledge")
    {
        return (
            error_reply(ErrorCode::ShuttingDown, "server is draining"),
            canonical_op(op),
        );
    }
    let reply = match op {
        "ping" => ok_reply(Vec::new()),
        "register_design" => op_register_design(state, &frame),
        "submit_batch" => op_submit_batch(state, &frame),
        "poll" => op_poll(state, &frame),
        "results" => op_results(state, &frame),
        "wait" => op_wait(state, &frame),
        "progress" => op_progress(state, &frame),
        // Unreachable from the connection loop (subscribe is intercepted
        // before dispatch, socket in hand); kept so a unit caller gets a
        // diagnosis rather than `unknown_op`.
        "subscribe" => error_reply(
            ErrorCode::BadRequest,
            "subscribe streams on its connection and cannot be dispatched",
        ),
        "stats" => op_stats(state),
        "export_knowledge" => op_export_knowledge(state, &frame),
        "import_knowledge" => op_import_knowledge(state, &frame),
        "metrics" => op_metrics(state),
        "health" => op_health(state),
        "events" => op_events(state, &frame),
        "trace_check" => op_trace_check(state, &frame),
        "shutdown" => op_shutdown(state),
        _ => error_reply(ErrorCode::UnknownOp, format!("unknown op `{op}`")),
    };
    (reply, canonical_op(op))
}

fn op_stats(state: &ServerState) -> Json {
    // The request-accounting view: how often each op was called and how
    // often each error code was produced, from the same counters the
    // `metrics` op exposes (looking one up creates it at zero, so the reply
    // always enumerates the full vocabulary).
    let ops = Json::Obj(
        KNOWN_OPS
            .iter()
            .map(|op| {
                (
                    (*op).to_string(),
                    Json::num(
                        state
                            .metrics
                            .counter(&format!("server_requests_{op}_total"))
                            .get(),
                    ),
                )
            })
            .collect(),
    );
    let errors = Json::Obj(
        ErrorCode::ALL
            .iter()
            .map(|code| {
                (
                    code.as_str().to_string(),
                    Json::num(
                        state
                            .metrics
                            .counter(&format!("server_errors_{}_total", code.as_str()))
                            .get(),
                    ),
                )
            })
            .collect(),
    );
    let durability = DurabilityStats {
        mode: state.durability.as_str(),
        loaded_snapshots: state.loaded_snapshots.load(Ordering::Relaxed),
        snapshots_rejected_at_boot: state.snapshots_rejected_at_boot.load(Ordering::Relaxed),
        boot_replayed_records: state.boot_replayed_records.load(Ordering::Relaxed),
        journal_quarantined_bytes: state.journal_quarantined_bytes.load(Ordering::Relaxed),
    };
    refresh_derived_gauges(state);
    ok_reply(vec![
        ("stats", stats_to_wire(&state.service.stats(), &durability)),
        ("ops", ops),
        ("errors", errors),
        ("version", Json::str(env!("CARGO_PKG_VERSION"))),
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
    ])
}

/// Pushes the derived observability gauges into the registry so both
/// exposition paths (`metrics`, `stats`) and every post-mortem bundle see
/// them: uptime, the tracer's dropped-record count and the flight
/// recorder's overwrite/recorded counts. Gauges rather than counters
/// because they mirror external state instead of accumulating here.
fn refresh_derived_gauges(state: &ServerState) {
    state
        .metrics
        .gauge("server_uptime_seconds")
        .set(state.started.elapsed().as_secs_f64());
    state
        .metrics
        .gauge("server_trace_dropped_records")
        .set(state.tracer.dropped() as f64);
    state
        .metrics
        .gauge("server_recorder_overwrites")
        .set(state.recorder.overwrites() as f64);
    state
        .metrics
        .gauge("server_recorder_recorded")
        .set(state.recorder.recorded() as f64);
}

fn op_metrics(state: &ServerState) -> Json {
    // Both exposition formats from one registry snapshot: the Prometheus
    // text for scrapers, the flat JSON object for tooling that already
    // speaks the protocol. The JSON text round-trips through the parser so
    // it lands in the reply as a real object, not a quoted blob.
    refresh_derived_gauges(state);
    let rendered = state.metrics.render_json();
    let json = Json::parse(&rendered)
        .unwrap_or_else(|e| Json::str(format!("metrics rendering failed to parse: {e}")));
    // The registry's names are label-free by design; the conventional
    // build-info gauge carries its one label here, at the exposition edge.
    let prometheus = format!(
        "{}# TYPE wlac_build_info gauge\nwlac_build_info{{version=\"{}\"}} 1\n",
        state.metrics.render_prometheus(),
        env!("CARGO_PKG_VERSION"),
    );
    ok_reply(vec![
        ("prometheus", Json::str(prometheus)),
        ("metrics", json),
    ])
}

fn op_health(state: &ServerState) -> Json {
    let stats = state.service.stats();
    let queue_depth = state.metrics.gauge("service_queue_depth").get().max(0.0) as u64;
    let workers_ok = stats.workers_alive >= state.configured_workers;
    let queue_ok = queue_depth <= state.max_queue_depth as u64;
    let last_failure_age = state
        .last_autosave_failure
        .lock_recover()
        .map(|at| at.elapsed());
    let durability_ok = last_failure_age.is_none_or(|age| age > state.slo.window);
    let (requests, error_rate, p99) = state.slo.fold();
    let slo_ok = error_rate <= state.slo_error_rate && p99 <= state.slo_p99;
    let draining = state.shutting_down.load(Ordering::Acquire);
    // Liveness is answering at all; readiness is having the capacity to take
    // more work (worker quorum + queue headroom, and not draining); degraded
    // flags objective or durability trouble while still serving.
    let ready = workers_ok && queue_ok && !draining;
    let degraded = !durability_ok || !slo_ok;
    let status = if !ready {
        "not_ready"
    } else if degraded {
        "degraded"
    } else {
        "ready"
    };
    let workers = Json::obj(vec![
        ("alive", Json::num(stats.workers_alive as u64)),
        ("configured", Json::num(state.configured_workers as u64)),
        ("ok", Json::Bool(workers_ok)),
    ]);
    let queue = Json::obj(vec![
        ("depth", Json::num(queue_depth)),
        ("capacity", Json::num(state.max_queue_depth as u64)),
        ("ok", Json::Bool(queue_ok)),
    ]);
    let durability = Json::obj(vec![
        ("mode", Json::str(state.durability.as_str())),
        (
            "last_autosave_failure_s",
            match last_failure_age {
                Some(age) => Json::Num(age.as_secs_f64()),
                None => Json::Null,
            },
        ),
        ("ok", Json::Bool(durability_ok)),
    ]);
    let slo = Json::obj(vec![
        ("window_s", Json::Num(state.slo.window.as_secs_f64())),
        ("requests", Json::num(requests as u64)),
        ("error_rate", Json::Num(error_rate)),
        ("error_rate_objective", Json::Num(state.slo_error_rate)),
        ("p99_ms", Json::Num(p99.as_secs_f64() * 1e3)),
        (
            "p99_objective_ms",
            Json::Num(state.slo_p99.as_secs_f64() * 1e3),
        ),
        ("ok", Json::Bool(slo_ok)),
    ]);
    ok_reply(vec![
        ("status", Json::str(status)),
        ("live", Json::Bool(true)),
        ("ready", Json::Bool(ready)),
        ("degraded", Json::Bool(degraded)),
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        (
            "checks",
            Json::obj(vec![
                ("workers", workers),
                ("queue", queue),
                ("durability", durability),
                ("slo", slo),
            ]),
        ),
    ])
}

/// Default and hard cap of the `events` op's reply size.
const EVENTS_DEFAULT_LIMIT: usize = 256;

fn op_events(state: &ServerState, frame: &Json) -> Json {
    let layer = match frame.get("layer").and_then(Json::as_str) {
        Some(name) => match RecorderLayer::parse(name) {
            Some(layer) => Some(layer),
            None => {
                return error_reply(
                    ErrorCode::BadRequest,
                    format!(
                        "unknown layer `{name}` (expected one of: {})",
                        RecorderLayer::ALL.map(RecorderLayer::as_str).join(", ")
                    ),
                )
            }
        },
        None => None,
    };
    let job = frame.get("job").and_then(Json::as_u64);
    let limit = frame
        .get("limit")
        .and_then(Json::as_u64)
        .map(|l| l as usize)
        .unwrap_or(EVENTS_DEFAULT_LIMIT)
        .min(state.recorder.capacity());
    let events = state.recorder.snapshot();
    let selected: Vec<Json> = events
        .iter()
        .filter(|e| layer.is_none_or(|l| e.layer == l))
        .filter(|e| job.is_none_or(|j| e.job == j))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .take(limit)
        .rev()
        .map(event_to_json)
        .collect();
    ok_reply(vec![
        ("events", Json::Arr(selected)),
        ("recorded", Json::num(state.recorder.recorded())),
        ("overwritten", Json::num(state.recorder.overwrites())),
        ("capacity", Json::num(state.recorder.capacity() as u64)),
    ])
}

fn op_register_design(state: &ServerState, frame: &Json) -> Json {
    let Some(source) = frame.get("source").and_then(Json::as_str) else {
        return error_reply(ErrorCode::BadRequest, "missing string member `source`");
    };
    let netlist = match wlac_frontend::compile(source) {
        Ok(netlist) => netlist,
        Err(e) => return error_reply(ErrorCode::CompileError, e.to_string()),
    };
    let design = state.service.register_design(&netlist);
    let outputs = Json::Arr(
        netlist
            .outputs()
            .iter()
            .map(|(name, _)| Json::str(name.clone()))
            .collect(),
    );
    let name = netlist.name().to_string();
    state
        .designs
        .lock_recover()
        .entry(design)
        .or_insert(netlist);
    ok_reply(vec![
        ("design", Json::str(design_to_wire(design))),
        ("module", Json::str(name)),
        ("outputs", outputs),
    ])
}

/// Resolves a monitor reference: a marked output name first, then any named
/// net. Must be a single-bit net.
fn resolve_monitor(netlist: &Netlist, name: &str) -> Result<NetId, String> {
    let net = netlist
        .outputs()
        .iter()
        .find(|(output, _)| output == name)
        .map(|(_, net)| *net)
        .or_else(|| netlist.find_net(name))
        .ok_or_else(|| format!("no output or named net `{name}`"))?;
    if netlist.net_width(net) != 1 {
        return Err(format!(
            "`{name}` is {} bits wide; monitors must be single-bit",
            netlist.net_width(net)
        ));
    }
    Ok(net)
}

fn parse_job(state: &ServerState, job: &Json, index: usize) -> Result<Verification, Json> {
    let bad = |message: String| Err(error_reply(ErrorCode::BadProperty, message));
    let Some(design_text) = job.get("design").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: missing string member `design`"),
        ));
    };
    let Some(design) = design_from_wire(design_text) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: `{design_text}` is not a design hash"),
        ));
    };
    let netlist = {
        let designs = state.designs.lock_recover();
        match designs.get(&design) {
            Some(netlist) => netlist.clone(),
            None => {
                return Err(error_reply(
                    ErrorCode::UnknownDesign,
                    format!("job #{index}: design {design_text} is not registered"),
                ))
            }
        }
    };
    let Some(property) = job.get("property") else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: missing member `property`"),
        ));
    };
    let kind = match property.get("kind").and_then(Json::as_str) {
        Some("always") | None => PropertyKind::Always,
        Some("eventually") => PropertyKind::Eventually,
        Some(other) => {
            return bad(format!(
                "job #{index}: property kind `{other}` (expected `always` or `eventually`)"
            ))
        }
    };
    let Some(monitor_name) = property.get("monitor").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("job #{index}: property is missing string member `monitor`"),
        ));
    };
    let monitor = match resolve_monitor(&netlist, monitor_name) {
        Ok(net) => net,
        Err(message) => return bad(format!("job #{index}: {message}")),
    };
    let name = property
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or(monitor_name)
        .to_string();
    let mut environment = Vec::new();
    if let Some(env) = job.get("environment") {
        let Some(items) = env.as_arr() else {
            return bad(format!("job #{index}: `environment` must be an array"));
        };
        for item in items {
            let Some(env_name) = item.as_str() else {
                return bad(format!("job #{index}: environment entries must be strings"));
            };
            match resolve_monitor(&netlist, env_name) {
                Ok(net) => environment.push(net),
                Err(message) => return bad(format!("job #{index}: {message}")),
            }
        }
    }
    let property = Property {
        name,
        kind,
        monitor,
    };
    Ok(Verification {
        netlist,
        property,
        environment,
    })
}

fn op_submit_batch(state: &ServerState, frame: &Json) -> Json {
    let Some(jobs) = frame.get("jobs").and_then(Json::as_arr) else {
        return error_reply(ErrorCode::BadRequest, "missing array member `jobs`");
    };
    let mut verifications = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        match parse_job(state, job, index) {
            Ok(verification) => verifications.push(verification),
            Err(reply) => return reply,
        }
    }
    let batch = state.service.submit_batch(verifications);
    ok_reply(vec![("batch", Json::num(batch.raw()))])
}

fn batch_from(frame: &Json) -> Result<BatchId, Json> {
    frame
        .get("batch")
        .and_then(Json::as_u64)
        .map(BatchId::from_raw)
        .ok_or_else(|| error_reply(ErrorCode::BadRequest, "missing integer member `batch`"))
}

fn op_poll(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    match state.service.poll(batch) {
        Some(status) => ok_reply(vec![
            ("total", Json::num(status.total as u64)),
            ("completed", Json::num(status.completed as u64)),
            ("done", Json::Bool(status.done())),
        ]),
        None => error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw())),
    }
}

fn results_reply(state: &ServerState, results: Vec<JobResult>) -> Json {
    // A design whose jobs were all answered from the verdict cache learned
    // nothing — skipping it keeps the warm path free of redundant writes.
    let mut saved: Vec<DesignHash> = results
        .iter()
        .filter(|r| !r.from_cache)
        .map(|r| r.design)
        .collect();
    saved.sort_unstable_by_key(|d| d.0);
    saved.dedup();
    for design in saved {
        match &state.journal {
            // Journal mode: every raced result is already on disk (the
            // service appended it before publishing), so the reply needs no
            // snapshot. Snapshots are the *compaction* artifact: written
            // only once the journal has grown past the threshold, after
            // which the journal truncates back to its header.
            Some(sink) => {
                if sink.journal_bytes(design) >= state.journal_compact_bytes {
                    compact_design(state, design);
                }
            }
            // Snapshot mode: autosave every design this batch actually
            // raced on, so even a kill -9 after the reply keeps the warmth.
            None => {
                save_design(state, design);
            }
        }
    }
    ok_reply(vec![(
        "results",
        Json::Arr(results.iter().map(job_result_to_wire).collect()),
    )])
}

fn op_results(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    match state.service.results(batch) {
        Some(results) => results_reply(state, results),
        None => match state.service.poll(batch) {
            Some(_) => error_reply(ErrorCode::NotDone, "batch is still running; poll or wait"),
            None => error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw())),
        },
    }
}

fn op_wait(state: &ServerState, frame: &Json) -> Json {
    let batch = match batch_from(frame) {
        Ok(batch) => batch,
        Err(reply) => return reply,
    };
    if state.service.poll(batch).is_none() {
        return error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw()));
    }
    // Bounded on the server side no matter what the client asks for: an
    // unbounded wait would pin a connection thread to a wedged batch forever.
    // Clients may ask for less via `timeout_ms` and poll again on `timeout`.
    let timeout = frame
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis)
        .map_or(state.wait_timeout, |t| t.min(state.wait_timeout));
    match state.service.wait_timeout(batch, timeout) {
        Some(results) => results_reply(state, results),
        None => error_reply(
            ErrorCode::Timeout,
            format!(
                "batch {} not done after {} ms; poll or wait again",
                batch.raw(),
                timeout.as_millis()
            ),
        ),
    }
}

/// Point-in-time progress. With a `batch` member: that batch's completion
/// counts plus a row per job still racing. Without: the whole server's live
/// load — queue depth, worker liveness, and every in-flight job — the data
/// behind `wlac-client top`.
fn op_progress(state: &ServerState, frame: &Json) -> Json {
    if frame.get("batch").is_some() {
        let batch = match batch_from(frame) {
            Ok(batch) => batch,
            Err(reply) => return reply,
        };
        return match state.service.batch_progress(batch) {
            Some(progress) => ok_reply(vec![
                ("batch", Json::num(batch.raw())),
                ("total", Json::num(progress.total as u64)),
                ("completed", Json::num(progress.completed as u64)),
                ("done", Json::Bool(progress.done())),
                (
                    "running",
                    Json::Arr(progress.running.iter().map(job_progress_to_wire).collect()),
                ),
            ]),
            None => error_reply(ErrorCode::UnknownBatch, format!("no batch {}", batch.raw())),
        };
    }
    let stats = state.service.stats();
    let running = state.service.running_jobs();
    ok_reply(vec![
        ("queue_depth", Json::num(stats.queue_depth as u64)),
        ("running_jobs", Json::num(running.len() as u64)),
        ("workers_alive", Json::num(stats.workers_alive as u64)),
        ("uptime_s", Json::Num(state.started.elapsed().as_secs_f64())),
        (
            "running",
            Json::Arr(running.iter().map(job_progress_to_wire).collect()),
        ),
    ])
}

fn design_from(state: &ServerState, frame: &Json) -> Result<DesignHash, Json> {
    let Some(text) = frame.get("design").and_then(Json::as_str) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            "missing string member `design`",
        ));
    };
    let Some(design) = design_from_wire(text) else {
        return Err(error_reply(
            ErrorCode::BadRequest,
            format!("`{text}` is not a design hash"),
        ));
    };
    if !state.designs.lock_recover().contains_key(&design) {
        return Err(error_reply(
            ErrorCode::UnknownDesign,
            format!("design {text} is not registered"),
        ));
    }
    Ok(design)
}

fn op_export_knowledge(state: &ServerState, frame: &Json) -> Json {
    let design = match design_from(state, frame) {
        Ok(design) => design,
        Err(reply) => return reply,
    };
    let Some(snapshot) = assemble_snapshot(state, design) else {
        return error_reply(ErrorCode::Internal, "design vanished mid-export");
    };
    match encode_snapshot(&snapshot) {
        Ok(bytes) => ok_reply(vec![
            ("design", Json::str(design_to_wire(design))),
            ("snapshot", Json::str(hex_encode(&bytes))),
        ]),
        Err(e) => error_reply(ErrorCode::Internal, e.to_string()),
    }
}

fn op_import_knowledge(state: &ServerState, frame: &Json) -> Json {
    let Some(hex) = frame.get("snapshot").and_then(Json::as_str) else {
        return error_reply(ErrorCode::BadRequest, "missing string member `snapshot`");
    };
    let Some(bytes) = hex_decode(hex) else {
        return error_reply(ErrorCode::BadRequest, "`snapshot` is not hex");
    };
    let snapshot = match decode_snapshot(&bytes) {
        Ok(snapshot) => snapshot,
        Err(e) => return error_reply(ErrorCode::BadSnapshot, e.to_string()),
    };
    // When the caller names a design, the snapshot must describe it — this
    // is how a client warm-starting a specific design finds out it sent the
    // wrong file.
    if let Some(text) = frame.get("design").and_then(Json::as_str) {
        match design_from_wire(text) {
            Some(design) if design == snapshot.knowledge.design() => {}
            Some(_) | None => {
                return error_reply(
                    ErrorCode::BadSnapshot,
                    format!(
                        "snapshot describes design {}, not {text}",
                        design_to_wire(snapshot.knowledge.design())
                    ),
                )
            }
        }
    }
    let design = state.service.register_design(&snapshot.netlist);
    if design != snapshot.knowledge.design() {
        return error_reply(ErrorCode::BadSnapshot, "design hash mismatch");
    }
    if let Err(e) = state.service.import_knowledge(design, &snapshot.knowledge) {
        return error_reply(ErrorCode::BadSnapshot, e.to_string());
    }
    let verdicts = match state.service.import_verdicts(design, &snapshot.verdicts) {
        Ok(count) => count,
        Err(e) => return error_reply(ErrorCode::BadSnapshot, e.to_string()),
    };
    state
        .designs
        .lock_recover()
        .entry(design)
        .or_insert(snapshot.netlist);
    ok_reply(vec![
        ("design", Json::str(design_to_wire(design))),
        ("verdicts", Json::num(verdicts as u64)),
    ])
}

/// Encodes one trace event for the wire.
fn trace_event_to_wire(event: &wlac_telemetry::TraceEvent) -> Json {
    Json::obj(vec![
        ("at_ns", Json::num(event.at_nanos)),
        ("kind", Json::str(event.kind.as_str())),
        ("name", Json::str(event.name)),
        ("id", Json::num(event.id)),
        ("parent", Json::num(event.parent)),
        ("value", Json::num(event.value)),
    ])
}

/// On-demand traced check: runs the job once through the paper's ATPG
/// checker with tracing enabled and returns the phase-attributed time
/// breakdown plus the span events, instead of just a verdict. The run is
/// deliberately outside the service (no cache, no warm start, single
/// engine): the point is a reproducible profile of *this* check, not the
/// fastest answer.
fn op_trace_check(state: &ServerState, frame: &Json) -> Json {
    let verification = match parse_job(state, frame, 0) {
        Ok(verification) => verification,
        Err(reply) => return reply,
    };
    let tracer = Arc::new(Tracer::new(8192));
    let options = state
        .checker_options
        .clone()
        .with_trace(TraceSink::to(Arc::clone(&tracer)));
    let report: CheckReport = AssertionChecker::new(options).check(&verification);

    let mut verdict = vec![("label", Json::str(check_result_label(&report.result)))];
    match &report.result {
        CheckResult::HoldsUpToBound { frames } | CheckResult::WitnessNotFound { frames } => {
            verdict.push(("frames", Json::num(*frames as u64)));
        }
        CheckResult::CounterExample { trace } | CheckResult::WitnessFound { trace } => {
            verdict.push(("trace_cycles", Json::num(trace.len() as u64)));
        }
        CheckResult::Unknown { reason } => verdict.push(("reason", Json::str(reason.clone()))),
        CheckResult::Proved => {}
    }

    let phases = &report.stats.phases;
    let phases_wire = Json::obj(vec![
        ("implication_ns", Json::num(phases.implication)),
        ("justification_ns", Json::num(phases.justification)),
        ("decision_ns", Json::num(phases.decision)),
        ("datapath_ns", Json::num(phases.datapath)),
        ("sat_leaf_ns", Json::num(phases.sat_leaf)),
        ("backtrack_ns", Json::num(phases.backtrack)),
        ("other_ns", Json::num(phases.other)),
        ("total_ns", Json::num(phases.total())),
    ]);
    let stats = &report.stats;
    let stats_wire = Json::obj(vec![
        ("decisions", Json::num(stats.decisions)),
        ("backtracks", Json::num(stats.backtracks)),
        (
            "gate_evaluations",
            Json::num(stats.implication.gate_evaluations),
        ),
        ("arithmetic_calls", Json::num(stats.arithmetic_calls)),
        ("datapath_fact_hits", Json::num(stats.datapath_fact_hits)),
        (
            "justify_gates_rechecked",
            Json::num(stats.justify_gates_rechecked),
        ),
        ("frames_explored", Json::num(stats.frames_explored as u64)),
        (
            "peak_memory_bytes",
            Json::num(stats.peak_memory_bytes as u64),
        ),
    ]);
    let events = tracer.events();
    ok_reply(vec![
        ("property", Json::str(report.property)),
        ("verdict", Json::obj(verdict)),
        (
            "elapsed_ms",
            Json::Num(report.stats.elapsed.as_secs_f64() * 1e3),
        ),
        ("phases", phases_wire),
        ("stats", stats_wire),
        (
            "events",
            Json::Arr(events.iter().map(trace_event_to_wire).collect()),
        ),
        ("events_dropped", Json::num(tracer.dropped())),
    ])
}

/// Wire label of a core check result (the core vocabulary, not the
/// portfolio's — `trace_check` runs the ATPG engine alone).
fn check_result_label(result: &CheckResult) -> &'static str {
    match result {
        CheckResult::Proved => "proved",
        CheckResult::HoldsUpToBound { .. } => "holds(bound)",
        CheckResult::CounterExample { .. } => "violated",
        CheckResult::WitnessFound { .. } => "witness",
        CheckResult::WitnessNotFound { .. } => "no witness",
        CheckResult::Unknown { .. } => "unknown",
    }
}

fn op_shutdown(state: &ServerState) -> Json {
    state.shutting_down.store(true, Ordering::Release);
    // Drain before replying: when the client sees this reply, every job it
    // (or anyone else) submitted has a result and is on disk. Bounded, so a
    // wedged job cannot turn shutdown into a hang.
    let drained = state.service.drain_timeout(state.drain_timeout);
    if !drained {
        eprintln!("wlac-server: shutdown drain timed out; unfinished jobs abandoned");
    }
    let saved = save_all_designs(state);
    // Wake the blocking accept loop so `run` notices the flag; the loop
    // drops this connection without serving it.
    TcpStream::connect(state.addr).ok();
    ok_reply(vec![
        ("saved_designs", Json::num(saved as u64)),
        ("drained", Json::Bool(drained)),
    ])
}
