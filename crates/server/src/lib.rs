//! # wlac-server — the network front end of the verification service
//!
//! PR 4's [`wlac_service::VerificationService`] made checking a long-lived,
//! learning session — but only for callers inside the same process. This
//! crate puts it on the network and on disk:
//!
//! * **Wire protocol** — a thread-per-connection TCP listener speaking
//!   line-delimited JSON (hand-rolled [`Json`]; the workspace builds offline,
//!   so no serde/tokio). Requests: `register_design` (Verilog-subset source,
//!   compiled by `wlac-frontend`), `submit_batch`, `poll`, `results`,
//!   `wait`, `stats`, `export_knowledge`, `import_knowledge`, `metrics`,
//!   `health`, `events`, `trace_check`, `ping`, `shutdown`. Malformed frames
//!   get structured `{"ok":false,"error":{…}}` replies on the same
//!   connection instead of a dropped socket.
//! * **Observability** — one [`wlac_telemetry::MetricsRegistry`] is shared
//!   by the whole stack (service gauges and counters, portfolio race
//!   attribution, aggregated core search effort, per-op request counters and
//!   latency histograms). The `metrics` op exposes it as Prometheus text and
//!   flat JSON; `trace_check` runs one property with search tracing on and
//!   returns the phase-attributed time breakdown plus span events; requests
//!   slower than [`ServerConfig::slow_request_threshold`] get a structured
//!   stderr line. An always-on [`wlac_telemetry::FlightRecorder`] captures
//!   compact structured events from every layer (`events` tails it
//!   remotely), every contained fault writes a bounded
//!   [`PostmortemWriter`] bundle, and `health` answers
//!   liveness/readiness from worker quorum, queue depth, durability state
//!   and rolling error-rate / p99 objectives.
//! * **Persistence** — by default every definitive result is appended to a
//!   per-design write-ahead journal ([`wlac_persist::JournalSink`], with
//!   group-commit fsync) *before* the client sees the acknowledgement, and
//!   journals are compacted into [`wlac_persist::Snapshot`]s in the
//!   background and on the graceful-shutdown drain; on boot the server
//!   reloads every snapshot through the service's validating import and
//!   replays the journal suffix (torn tails quarantined, never a boot
//!   failure), so a restarted server answers repeat queries from the
//!   persisted verdict cache with zero engine spawns. The
//!   [`ServerConfig::durability`] mode widens or narrows the contract
//!   (`snapshot` / `journal` / `strict`).
//! * **Tooling** — the `wlac-server` binary runs the daemon, `wlac-client`
//!   drives it from scripts and CI (`register` / `check` / `stats` /
//!   `export` / `import` / `shutdown`).
//!
//! See the README's "Server" section for the full protocol reference.
//!
//! # Examples
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use wlac_server::{Server, ServerConfig};
//!
//! let mut config = ServerConfig::default();
//! config.addr = "127.0.0.1:0".into(); // ephemeral port
//! let server = Server::bind(config)?;
//! let addr = server.local_addr()?;
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut stream = TcpStream::connect(addr)?;
//! stream.write_all(b"{\"op\":\"ping\"}\n{\"op\":\"shutdown\"}\n")?;
//! let mut lines = BufReader::new(stream).lines();
//! assert!(lines.next().unwrap()?.contains("\"ok\":true"));
//! handle.join().unwrap();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serving path must degrade, not die: every fallible unwrap is a
// potential crash a fault can reach, so they are banned outside tests
// (see clippy.toml for the test exemption).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod json;
pub mod postmortem;
pub mod proto;
mod server;

pub use json::{Json, JsonError};
pub use postmortem::PostmortemWriter;
pub use proto::ErrorCode;
pub use server::{Server, ServerConfig};
