//! A minimal JSON value, parser and encoder.
//!
//! The workspace builds fully offline (no serde), and the wire protocol
//! needs only a small, well-behaved JSON subset: objects, arrays, strings,
//! numbers, booleans and null. The parser is a bounds- and depth-checked
//! recursive descent; the encoder escapes control characters and always
//! emits one line (no pretty printing), which is exactly what the
//! line-delimited framing wants.
//!
//! 64-bit identities (design hashes, property hashes) are transported as
//! strings, never as numbers — JSON numbers are doubles and silently lose
//! integer precision above 2^53.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as a double, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why a frame failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: a frame deeper than this is hostile, not a request.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut parser = Parser { bytes, pos: 0 };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != bytes.len() {
            return Err(parser.error("trailing characters"));
        }
        Ok(value)
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from an unsigned counter.
    ///
    /// # Panics
    ///
    /// Panics above 2^53, where doubles stop being exact — identities that
    /// large must travel as strings.
    pub fn num(n: u64) -> Json {
        assert!(n <= (1 << 53), "counter too large for a JSON number");
        Json::Num(n as f64)
    }

    /// Member lookup on an object; `None` on other values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null") // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired; the
                            // protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe to find).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.error("bad utf-8"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let value = Json::obj(vec![
            ("op", Json::str("submit_batch")),
            ("count", Json::num(3)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "jobs",
                Json::Arr(vec![Json::str("a \"quoted\" name\nline2"), Json::num(0)]),
            ),
        ]);
        let encoded = value.to_string();
        assert!(!encoded.contains('\n'), "one line per frame: {encoded}");
        assert_eq!(Json::parse(&encoded).expect("reparse"), value);
    }

    #[test]
    fn parses_whitespace_numbers_and_unicode() {
        let parsed =
            Json::parse(" { \"a\" : [ 1.5 , -2 , 1e3 ] , \"s\" : \"π\\u00e9\" } ").expect("parse");
        assert_eq!(
            parsed.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("πé"));
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"a\":1} trailing",
            "nul",
            "--3",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_bound_rejects_hostile_nesting() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn u64_helpers_guard_precision() {
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Num(12.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(9.1e18).as_u64(), None);
    }
}
