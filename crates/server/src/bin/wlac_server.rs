//! The verification-server daemon.
//!
//! ```text
//! wlac-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//!             [--max-frames N] [--time-limit-secs N] [--cache-capacity N]
//!             [--max-connections N] [--read-timeout-secs N]
//!             [--wait-timeout-secs N] [--job-budget-secs N]
//!             [--drain-timeout-secs N]
//!             [--durability snapshot|journal|strict]
//!             [--journal-fsync-batch N] [--journal-compact-bytes N]
//! ```
//!
//! Prints `listening on <addr>` once ready (scripts parse this line — with
//! `--addr 127.0.0.1:0` it carries the ephemeral port), then serves until a
//! `shutdown` request drains and persists everything.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::time::Duration;
use wlac_faultinject::FaultSite;
use wlac_persist::DurabilityMode;
use wlac_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wlac-server [--addr HOST:PORT] [--data-dir DIR] [--workers N] \
         [--max-frames N] [--time-limit-secs N] [--cache-capacity N] \
         [--max-connections N] [--read-timeout-secs N] [--wait-timeout-secs N] \
         [--job-budget-secs N] [--drain-timeout-secs N] \
         [--durability snapshot|journal|strict] \
         [--journal-fsync-batch N] [--journal-compact-bytes N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => config.addr = value(),
            "--data-dir" => config.data_dir = Some(PathBuf::from(value())),
            "--workers" => {
                config.service.workers = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-frames" => {
                config.service.portfolio.checker.max_frames =
                    value().parse().unwrap_or_else(|_| usage());
            }
            "--time-limit-secs" => {
                config.service.portfolio.checker.time_limit =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--cache-capacity" => {
                config.service.cache_capacity = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-connections" => {
                config.max_connections = value().parse().unwrap_or_else(|_| usage());
            }
            "--read-timeout-secs" => {
                let secs: u64 = value().parse().unwrap_or_else(|_| usage());
                config.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--wait-timeout-secs" => {
                config.wait_timeout =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--job-budget-secs" => {
                config.service.job_budget = Some(Duration::from_secs(
                    value().parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--drain-timeout-secs" => {
                config.drain_timeout =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--durability" => {
                config.durability = DurabilityMode::parse(&value()).unwrap_or_else(|| usage());
            }
            "--journal-fsync-batch" => {
                config.journal_fsync_batch = value().parse().unwrap_or_else(|_| usage());
            }
            "--journal-compact-bytes" => {
                config.journal_compact_bytes = value().parse().unwrap_or_else(|_| usage());
            }
            // Undocumented crash-test hook: hard-abort the process in the
            // middle of the Nth journal append, leaving a genuinely torn
            // frame on disk. Used by the crash-matrix suite; useless (and
            // harmless) in production.
            "--crash-after-appends" => {
                let n: u64 = value().parse().unwrap_or_else(|_| usage());
                config.faults = config.faults.fire_nth(FaultSite::CrashPoint, n);
            }
            _ => usage(),
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("wlac-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("wlac-server: bound socket has no address: {e}");
            std::process::exit(1);
        }
    };
    if server.loaded_snapshots() > 0 || server.boot_replayed_records() > 0 {
        eprintln!(
            "wlac-server: warm boot, {} snapshot(s) loaded, {} journal record(s) replayed",
            server.loaded_snapshots(),
            server.boot_replayed_records()
        );
    }
    if server.snapshots_rejected_at_boot() > 0 {
        eprintln!(
            "wlac-server: cold boot for {} design(s): snapshot(s) rejected and no backup",
            server.snapshots_rejected_at_boot()
        );
    }
    if server.journal_quarantined_bytes() > 0 {
        eprintln!(
            "wlac-server: quarantined {} journal byte(s) past the last valid record",
            server.journal_quarantined_bytes()
        );
    }
    println!("listening on {addr}");
    server.run();
    println!("wlac-server: drained and saved, bye");
}
