//! The verification-server daemon.
//!
//! ```text
//! wlac-server [--addr HOST:PORT] [--data-dir DIR] [--workers N]
//!             [--max-frames N] [--time-limit-secs N] [--cache-capacity N]
//!             [--max-connections N] [--read-timeout-secs N]
//!             [--wait-timeout-secs N] [--job-budget-secs N]
//!             [--drain-timeout-secs N]
//!             [--durability snapshot|journal|strict]
//!             [--journal-fsync-batch N] [--journal-compact-bytes N]
//!             [--postmortem-dir DIR] [--max-queue-depth N]
//!             [--fault SITE:N] [--fault-from SITE:N]
//! ```
//!
//! `--fault SITE:N` arms the fault-injection plan to fire `SITE` exactly on
//! its Nth hit; `--fault-from SITE:N` fires on every hit from the Nth on.
//! Sites: `engine_hang`, `worker_panic`, `worker_loss`, `snapshot_write`,
//! `snapshot_torn`, `journal_append`, `journal_torn`, `crash_point`. Chaos
//! drills and the CI post-mortem smoke only; harmless when unused.
//!
//! Prints `listening on <addr>` once ready (scripts parse this line — with
//! `--addr 127.0.0.1:0` it carries the ephemeral port), then serves until a
//! `shutdown` request drains and persists everything.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::time::Duration;
use wlac_faultinject::FaultSite;
use wlac_persist::DurabilityMode;
use wlac_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wlac-server [--addr HOST:PORT] [--data-dir DIR] [--workers N] \
         [--max-frames N] [--time-limit-secs N] [--cache-capacity N] \
         [--max-connections N] [--read-timeout-secs N] [--wait-timeout-secs N] \
         [--job-budget-secs N] [--drain-timeout-secs N] \
         [--durability snapshot|journal|strict] \
         [--journal-fsync-batch N] [--journal-compact-bytes N] \
         [--postmortem-dir DIR] [--max-queue-depth N] \
         [--fault SITE:N] [--fault-from SITE:N]"
    );
    std::process::exit(2);
}

/// Parses a `SITE:N` fault spec (e.g. `worker_panic:1`).
fn parse_fault_spec(spec: &str) -> Option<(FaultSite, u64)> {
    let (site, n) = spec.split_once(':')?;
    Some((FaultSite::parse(site)?, n.parse().ok()?))
}

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => config.addr = value(),
            "--data-dir" => config.data_dir = Some(PathBuf::from(value())),
            "--workers" => {
                config.service.workers = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-frames" => {
                config.service.portfolio.checker.max_frames =
                    value().parse().unwrap_or_else(|_| usage());
            }
            "--time-limit-secs" => {
                config.service.portfolio.checker.time_limit =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--cache-capacity" => {
                config.service.cache_capacity = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-connections" => {
                config.max_connections = value().parse().unwrap_or_else(|_| usage());
            }
            "--read-timeout-secs" => {
                let secs: u64 = value().parse().unwrap_or_else(|_| usage());
                config.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--wait-timeout-secs" => {
                config.wait_timeout =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--job-budget-secs" => {
                config.service.job_budget = Some(Duration::from_secs(
                    value().parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--drain-timeout-secs" => {
                config.drain_timeout =
                    Duration::from_secs(value().parse().unwrap_or_else(|_| usage()));
            }
            "--durability" => {
                config.durability = DurabilityMode::parse(&value()).unwrap_or_else(|| usage());
            }
            "--journal-fsync-batch" => {
                config.journal_fsync_batch = value().parse().unwrap_or_else(|_| usage());
            }
            "--journal-compact-bytes" => {
                config.journal_compact_bytes = value().parse().unwrap_or_else(|_| usage());
            }
            "--postmortem-dir" => {
                config.postmortem_dir = Some(PathBuf::from(value()));
            }
            "--max-queue-depth" => {
                config.max_queue_depth = value().parse().unwrap_or_else(|_| usage());
            }
            // Both plans get the arming: each site only fires where it is
            // actually checked (service worker loop, engines, or the
            // server's persistence I/O), so the union plan is safe and the
            // operator never has to know which layer owns a site.
            "--fault" => {
                let (site, n) = parse_fault_spec(&value()).unwrap_or_else(|| usage());
                config.faults = config.faults.fire_nth(site, n);
                config.service.faults = config.service.faults.fire_nth(site, n);
            }
            "--fault-from" => {
                let (site, n) = parse_fault_spec(&value()).unwrap_or_else(|| usage());
                config.faults = config.faults.fire_from(site, n);
                config.service.faults = config.service.faults.fire_from(site, n);
            }
            // Undocumented crash-test hook: hard-abort the process in the
            // middle of the Nth journal append, leaving a genuinely torn
            // frame on disk. Used by the crash-matrix suite; useless (and
            // harmless) in production.
            "--crash-after-appends" => {
                let n: u64 = value().parse().unwrap_or_else(|_| usage());
                config.faults = config.faults.fire_nth(FaultSite::CrashPoint, n);
            }
            _ => usage(),
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("wlac-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("wlac-server: bound socket has no address: {e}");
            std::process::exit(1);
        }
    };
    if server.loaded_snapshots() > 0 || server.boot_replayed_records() > 0 {
        eprintln!(
            "wlac-server: warm boot, {} snapshot(s) loaded, {} journal record(s) replayed",
            server.loaded_snapshots(),
            server.boot_replayed_records()
        );
    }
    if server.snapshots_rejected_at_boot() > 0 {
        eprintln!(
            "wlac-server: cold boot for {} design(s): snapshot(s) rejected and no backup",
            server.snapshots_rejected_at_boot()
        );
    }
    if server.journal_quarantined_bytes() > 0 {
        eprintln!(
            "wlac-server: quarantined {} journal byte(s) past the last valid record",
            server.journal_quarantined_bytes()
        );
    }
    println!("listening on {addr}");
    server.run();
    println!("wlac-server: drained and saved, bye");
}
