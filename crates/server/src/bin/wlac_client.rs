//! Command-line client for `wlac-server`.
//!
//! ```text
//! wlac-client [--addr HOST:PORT] ping
//! wlac-client [--addr HOST:PORT] register DESIGN.v
//! wlac-client [--addr HOST:PORT] check DESIGN.v [--always OUT]... [--eventually OUT]...
//! wlac-client [--addr HOST:PORT] stats
//! wlac-client [--addr HOST:PORT] metrics
//! wlac-client [--addr HOST:PORT] export DESIGN_HASH FILE.wlacsnap
//! wlac-client [--addr HOST:PORT] import FILE.wlacsnap
//! wlac-client [--addr HOST:PORT] shutdown
//! ```
//!
//! `metrics` prints the server's Prometheus-style exposition to stdout (for
//! scrapers and CI smoke checks).
//!
//! `check` registers the design, submits one job per `--always`/
//! `--eventually` monitor (default: one `always` job per design output) and
//! waits for the results. Exit codes: 0 all passed, 1 some property
//! violated/unknown, 2 usage or protocol error.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use wlac_server::{Json, JsonError};

struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Connection { writer, reader })
    }

    fn call(&mut self, request: &Json) -> Result<Json, String> {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("receive failed: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".into());
        }
        let reply =
            Json::parse(line.trim_end()).map_err(|e: JsonError| format!("bad reply frame: {e}"))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(reply)
        } else {
            let error = reply.get("error");
            let code = error
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("no message");
            Err(format!("server error [{code}]: {message}"))
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: wlac-client [--addr HOST:PORT] \
         (ping | register FILE.v | check FILE.v [--always OUT]... [--eventually OUT]... \
         | stats | metrics | export DESIGN FILE | import FILE | shutdown)"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("wlac-client: {message}");
    std::process::exit(2);
}

fn read_source(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn register(conn: &mut Connection, path: &str) -> Result<(String, Vec<String>), String> {
    let request = Json::obj(vec![
        ("op", Json::str("register_design")),
        ("source", Json::Str(read_source(path))),
    ]);
    let reply = conn.call(&request)?;
    let design = reply
        .get("design")
        .and_then(Json::as_str)
        .ok_or("reply missing `design`")?
        .to_string();
    let outputs = reply
        .get("outputs")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|i| i.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok((design, outputs))
}

fn print_results(reply: &Json) -> i32 {
    let mut failures = 0;
    let results = reply.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    for result in results {
        let property = result.get("property").and_then(Json::as_str).unwrap_or("?");
        let verdict = result.get("verdict");
        let label = verdict
            .and_then(|v| v.get("label"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        let cached = result
            .get("from_cache")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let engines = result
            .get("engines_spawned")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let wall = result
            .get("wall_ms")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        println!(
            "{property:<16} {label:<13} {} engines={engines} wall={wall:.2}ms",
            if cached { "cached" } else { "raced " },
        );
        if !matches!(label, "proved" | "holds(bound)" | "no witness" | "witness") {
            failures += 1;
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

fn cmd_check(conn: &mut Connection, path: &str, rest: &[String]) -> Result<i32, String> {
    let (design, outputs) = register(conn, path)?;
    println!("design {design}");
    let mut jobs: Vec<(String, String)> = Vec::new(); // (kind, monitor)
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        let monitor = iter
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a monitor name")));
        match flag.as_str() {
            "--always" => jobs.push(("always".into(), monitor.clone())),
            "--eventually" => jobs.push(("eventually".into(), monitor.clone())),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if jobs.is_empty() {
        // Default: every marked output is an `always` assertion.
        jobs = outputs
            .iter()
            .map(|o| ("always".into(), o.clone()))
            .collect();
    }
    if jobs.is_empty() {
        return Err("design has no outputs and no monitors were named".into());
    }
    let job_values: Vec<Json> = jobs
        .iter()
        .map(|(kind, monitor)| {
            Json::obj(vec![
                ("design", Json::str(design.clone())),
                (
                    "property",
                    Json::obj(vec![
                        ("kind", Json::str(kind.clone())),
                        ("monitor", Json::str(monitor.clone())),
                    ]),
                ),
            ])
        })
        .collect();
    let submit = Json::obj(vec![
        ("op", Json::str("submit_batch")),
        ("jobs", Json::Arr(job_values)),
    ]);
    let reply = conn.call(&submit)?;
    let batch = reply
        .get("batch")
        .and_then(Json::as_u64)
        .ok_or("reply missing `batch`")?;
    let wait = Json::obj(vec![("op", Json::str("wait")), ("batch", Json::num(batch))]);
    let reply = conn.call(&wait)?;
    Ok(print_results(&reply))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7117".to_string();
    let mut rest: &[String] = &args;
    if rest.first().map(String::as_str) == Some("--addr") {
        addr = rest.get(1).cloned().unwrap_or_else(|| usage());
        rest = &rest[2..];
    }
    let Some(command) = rest.first() else { usage() };
    let mut conn =
        Connection::open(&addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));

    let outcome: Result<i32, String> = match (command.as_str(), &rest[1..]) {
        ("ping", []) => conn
            .call(&Json::obj(vec![("op", Json::str("ping"))]))
            .map(|_| {
                println!("pong");
                0
            }),
        ("register", [path]) => register(&mut conn, path).map(|(design, outputs)| {
            println!("design {design} outputs [{}]", outputs.join(", "));
            0
        }),
        ("check", [path, flags @ ..]) => cmd_check(&mut conn, path, flags),
        ("stats", []) => conn
            .call(&Json::obj(vec![("op", Json::str("stats"))]))
            .map(|reply| {
                println!("{}", reply.get("stats").cloned().unwrap_or(Json::Null));
                0
            }),
        ("metrics", []) => conn
            .call(&Json::obj(vec![("op", Json::str("metrics"))]))
            .map(|reply| {
                print!(
                    "{}",
                    reply.get("prometheus").and_then(Json::as_str).unwrap_or("")
                );
                0
            }),
        ("export", [design, file]) => conn
            .call(&Json::obj(vec![
                ("op", Json::str("export_knowledge")),
                ("design", Json::str(design.clone())),
            ]))
            .and_then(|reply| {
                let hex = reply
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .ok_or("reply missing `snapshot`")?;
                let bytes = wlac_server::proto::hex_decode(hex).ok_or("reply snapshot not hex")?;
                std::fs::write(file, bytes).map_err(|e| format!("cannot write {file}: {e}"))?;
                println!("exported {design} to {file}");
                Ok(0)
            }),
        ("import", [file]) => {
            let bytes =
                std::fs::read(file).unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
            conn.call(&Json::obj(vec![
                ("op", Json::str("import_knowledge")),
                (
                    "snapshot",
                    Json::str(wlac_server::proto::hex_encode(&bytes)),
                ),
            ]))
            .map(|reply| {
                println!(
                    "imported design {} ({} cached verdicts)",
                    reply.get("design").and_then(Json::as_str).unwrap_or("?"),
                    reply.get("verdicts").and_then(Json::as_u64).unwrap_or(0)
                );
                0
            })
        }
        ("shutdown", []) => conn
            .call(&Json::obj(vec![("op", Json::str("shutdown"))]))
            .map(|reply| {
                println!(
                    "server drained, {} design(s) saved",
                    reply
                        .get("saved_designs")
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                );
                0
            }),
        _ => usage(),
    };

    match outcome {
        Ok(code) => std::process::exit(code),
        Err(message) => fail(&message),
    }
}
