//! Command-line client for `wlac-server`.
//!
//! ```text
//! wlac-client [--addr HOST:PORT] [--connect-timeout-ms N] [--io-timeout-ms N]
//!             [--retries N] COMMAND
//!
//! COMMAND: ping
//!        | register DESIGN.v
//!        | check DESIGN.v [--always OUT]... [--eventually OUT]...
//!        | watch BATCH [--interval-ms N]
//!        | top [--interval-ms N] [--frames N]
//!        | stats | metrics | health
//!        | events [--layer L] [--job N] [--limit N]
//!        | export DESIGN_HASH FILE.wlacsnap
//!        | import FILE.wlacsnap
//!        | shutdown
//! ```
//!
//! `metrics` prints the server's Prometheus-style exposition to stdout (for
//! scrapers and CI smoke checks). `health` prints the liveness/readiness
//! report and exits 0 when ready, 1 otherwise (for probes). `events` tails
//! the server's flight recorder, optionally filtered by layer
//! (`core`/`portfolio`/`service`/`persist`/`server`) and job id.
//!
//! `check` registers the design, submits one job per `--always`/
//! `--eventually` monitor (default: one `always` job per design output),
//! subscribes to the batch's event stream (live search progress goes to
//! stderr as it happens — no polling), and prints the final results. Exit
//! codes: 0 all passed, 1 some property violated/unknown, 2 usage or
//! protocol error.
//!
//! `watch` subscribes to an already-submitted batch: progress frames stream
//! to stderr, verdicts print to stdout as they land. Exit codes mirror
//! `check`, with 2 also covering a stream that ended before `batch_done`
//! (this subscriber was shed). `top` shows the server's live load — queue
//! depth, worker liveness, and a row per in-flight job with its deepest
//! bound, conflict count and elapsed time.
//!
//! The client never hangs and never gives up on transient pressure: connects
//! are bounded by `--connect-timeout-ms` (default 5000) and retried with
//! exponential back-off, every request is bounded by `--io-timeout-ms`
//! (default 150000), and structured `overloaded` sheds are retried after the
//! server's `retry_after_ms` hint. Subscriptions push at least one frame per
//! tick interval, so a live stream stays well inside the socket timeout.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use wlac_server::{Json, JsonError};

#[derive(Clone)]
struct Options {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
    retries: u32,
}

/// A failed call, with enough structure to decide whether to retry.
struct CallError {
    code: Option<String>,
    message: String,
    retry_after: Option<Duration>,
}

impl CallError {
    fn transport(message: String) -> CallError {
        CallError {
            code: None,
            message,
            retry_after: None,
        }
    }

    fn is(&self, code: &str) -> bool {
        self.code.as_deref() == Some(code)
    }
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.code {
            Some(code) => write!(f, "server error [{code}]: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    options: Options,
}

impl Connection {
    /// One bounded connect attempt (no retry).
    fn open_once(options: &Options) -> std::io::Result<Connection> {
        let mut addrs = options.addr.to_socket_addrs()?;
        let addr = addrs.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                format!("{} resolves to no address", options.addr),
            )
        })?;
        let writer = TcpStream::connect_timeout(&addr, options.connect_timeout)?;
        writer.set_read_timeout(options.io_timeout)?;
        writer.set_write_timeout(options.io_timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Connection {
            writer,
            reader,
            options: options.clone(),
        })
    }

    /// Connects with exponential back-off: transient refusals (server still
    /// booting, connection cap churn) are absorbed instead of surfaced.
    fn open(options: &Options) -> std::io::Result<Connection> {
        let mut delay = Duration::from_millis(100);
        let mut attempt = 0;
        loop {
            match Connection::open_once(options) {
                Ok(conn) => return Ok(conn),
                Err(e) if attempt < options.retries => {
                    eprintln!(
                        "wlac-client: connect to {} failed ({e}); retrying in {} ms",
                        options.addr,
                        delay.as_millis()
                    );
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn call_once(&mut self, request: &Json) -> Result<Json, CallError> {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| CallError::transport(format!("send failed: {e}")))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| CallError::transport(format!("receive failed: {e}")))?;
        if line.is_empty() {
            return Err(CallError::transport("server closed the connection".into()));
        }
        let reply = Json::parse(line.trim_end())
            .map_err(|e: JsonError| CallError::transport(format!("bad reply frame: {e}")))?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(reply)
        } else {
            let error = reply.get("error");
            Err(CallError {
                code: error
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .map(str::to_string),
                message: error
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("no message")
                    .to_string(),
                retry_after: error
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(Json::as_u64)
                    .map(Duration::from_millis),
            })
        }
    }

    /// One request, absorbing `overloaded` sheds: honours the server's
    /// `retry_after_ms` hint, reconnects (a shed closes the connection) and
    /// tries again up to the retry budget.
    fn call(&mut self, request: &Json) -> Result<Json, CallError> {
        let mut attempt = 0;
        loop {
            match self.call_once(request) {
                Err(e) if e.is("overloaded") && attempt < self.options.retries => {
                    let delay = e
                        .retry_after
                        .unwrap_or(Duration::from_millis(100 << attempt.min(6)));
                    eprintln!(
                        "wlac-client: server overloaded; retrying in {} ms",
                        delay.as_millis()
                    );
                    std::thread::sleep(delay);
                    *self = Connection::open(&self.options)
                        .map_err(|e| CallError::transport(format!("reconnect failed: {e}")))?;
                    attempt += 1;
                }
                outcome => return outcome,
            }
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: wlac-client [--addr HOST:PORT] [--connect-timeout-ms N] [--io-timeout-ms N] \
         [--retries N] \
         (ping | register FILE.v | check FILE.v [--always OUT]... [--eventually OUT]... \
         | watch BATCH [--interval-ms N] | top [--interval-ms N] [--frames N] \
         | stats | metrics | health | events [--layer L] [--job N] [--limit N] \
         | export DESIGN FILE | import FILE | shutdown)"
    );
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("wlac-client: {message}");
    std::process::exit(2);
}

fn read_source(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn register(conn: &mut Connection, path: &str) -> Result<(String, Vec<String>), String> {
    let request = Json::obj(vec![
        ("op", Json::str("register_design")),
        ("source", Json::Str(read_source(path))),
    ]);
    let reply = conn.call(&request).map_err(|e| e.to_string())?;
    let design = reply
        .get("design")
        .and_then(Json::as_str)
        .ok_or("reply missing `design`")?
        .to_string();
    let outputs = reply
        .get("outputs")
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|i| i.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok((design, outputs))
}

/// Prints one wire job result as a row; `true` when the property failed
/// (violated, unknown, or timed out).
fn print_result_row(result: &Json) -> bool {
    let property = result.get("property").and_then(Json::as_str).unwrap_or("?");
    let verdict = result.get("verdict");
    let label = verdict
        .and_then(|v| v.get("label"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let cached = result
        .get("from_cache")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let engines = result
        .get("engines_spawned")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let wall = result
        .get("wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN);
    println!(
        "{property:<16} {label:<13} {} engines={engines} wall={wall:.2}ms",
        if cached { "cached" } else { "raced " },
    );
    !matches!(label, "proved" | "holds(bound)" | "no witness" | "witness")
}

fn print_results(reply: &Json) -> i32 {
    let results = reply.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    let failures = results.iter().filter(|r| print_result_row(r)).count();
    if failures > 0 {
        1
    } else {
        0
    }
}

/// One human line for a streamed `progress` event.
fn progress_line(frame: &Json) -> String {
    let property = frame.get("property").and_then(Json::as_str).unwrap_or("?");
    let elapsed = frame
        .get("elapsed_ms")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let leading = frame.get("leading").and_then(Json::as_str).unwrap_or("-");
    let probe = frame.get("probe");
    let field = |name: &str| {
        probe
            .and_then(|p| p.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    format!(
        "{property:<16} bound={} conflicts={} decisions={} lead={leading} elapsed={:.1}s",
        field("bound"),
        field("conflicts"),
        field("decisions"),
        elapsed / 1e3,
    )
}

/// Subscribes this connection to `batch` and feeds every streamed event
/// frame to `on_event` until `batch_done` arrives. Returns `false` when the
/// server ended the stream early (this subscriber was shed, or the server
/// is draining) — the batch keeps running either way.
fn subscribe_stream(
    conn: &mut Connection,
    batch: u64,
    interval_ms: u64,
    on_event: &mut dyn FnMut(&Json),
) -> Result<bool, String> {
    let request = Json::obj(vec![
        ("op", Json::str("subscribe")),
        ("batch", Json::num(batch)),
        ("interval_ms", Json::num(interval_ms)),
    ]);
    conn.writer
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| conn.writer.flush())
        .map_err(|e| format!("send failed: {e}"))?;
    loop {
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(0) => return Ok(false), // stream closed before batch_done
            Ok(_) => {}
            Err(e) => return Err(format!("receive failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let frame = Json::parse(line.trim_end()).map_err(|e| format!("bad event frame: {e}"))?;
        if frame.get("ok").and_then(Json::as_bool) != Some(true) {
            let error = frame.get("error");
            return Err(format!(
                "server error [{}]: {}",
                error
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("?"),
                error
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("no message"),
            ));
        }
        if frame.get("event").and_then(Json::as_str) == Some("batch_done") {
            return Ok(true);
        }
        on_event(&frame);
    }
}

fn cmd_check(conn: &mut Connection, path: &str, rest: &[String]) -> Result<i32, String> {
    let (design, outputs) = register(conn, path)?;
    println!("design {design}");
    let mut jobs: Vec<(String, String)> = Vec::new(); // (kind, monitor)
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        let monitor = iter
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a monitor name")));
        match flag.as_str() {
            "--always" => jobs.push(("always".into(), monitor.clone())),
            "--eventually" => jobs.push(("eventually".into(), monitor.clone())),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if jobs.is_empty() {
        // Default: every marked output is an `always` assertion.
        jobs = outputs
            .iter()
            .map(|o| ("always".into(), o.clone()))
            .collect();
    }
    if jobs.is_empty() {
        return Err("design has no outputs and no monitors were named".into());
    }
    let job_values: Vec<Json> = jobs
        .iter()
        .map(|(kind, monitor)| {
            Json::obj(vec![
                ("design", Json::str(design.clone())),
                (
                    "property",
                    Json::obj(vec![
                        ("kind", Json::str(kind.clone())),
                        ("monitor", Json::str(monitor.clone())),
                    ]),
                ),
            ])
        })
        .collect();
    let submit = Json::obj(vec![
        ("op", Json::str("submit_batch")),
        ("jobs", Json::Arr(job_values)),
    ]);
    let reply = conn.call(&submit).map_err(|e| e.to_string())?;
    let batch = reply
        .get("batch")
        .and_then(Json::as_u64)
        .ok_or("reply missing `batch`")?;
    println!("batch {batch}");
    // Ride the batch's event stream instead of polling: the server pushes
    // live search progress (printed to stderr) and each verdict as it lands.
    let done = subscribe_stream(conn, batch, 1_000, &mut |frame| {
        if frame.get("event").and_then(Json::as_str) == Some("progress") {
            eprintln!("wlac-client: {}", progress_line(frame));
        }
    })?;
    if !done {
        return Err(format!("event stream for batch {batch} ended early"));
    }
    // Retire the finished batch; this is also what lands its autosave.
    let results = conn
        .call(&Json::obj(vec![
            ("op", Json::str("results")),
            ("batch", Json::num(batch)),
        ]))
        .map_err(|e| e.to_string())?;
    Ok(print_results(&results))
}

/// `watch BATCH [--interval-ms N]`: subscribes to an already-submitted
/// batch and relays its event stream — progress to stderr, verdicts to
/// stdout as they land. Exit code: 0 all passed, 1 something failed, 2 the
/// stream ended before `batch_done` (this subscriber was shed).
fn cmd_watch(conn: &mut Connection, batch: &str, flags: &[String]) -> Result<i32, String> {
    let batch: u64 = batch
        .parse()
        .map_err(|_| "watch needs a numeric batch id".to_string())?;
    let mut interval_ms = 250u64;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--interval-ms" => {
                interval_ms = value
                    .parse()
                    .unwrap_or_else(|_| fail("--interval-ms needs a number"));
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let mut failures = 0usize;
    let done = subscribe_stream(conn, batch, interval_ms, &mut |frame| match frame
        .get("event")
        .and_then(Json::as_str)
    {
        Some("progress") => eprintln!("wlac-client: {}", progress_line(frame)),
        Some("verdict") => {
            if let Some(result) = frame.get("result") {
                if print_result_row(result) {
                    failures += 1;
                }
            }
        }
        _ => {}
    })?;
    if !done {
        eprintln!("wlac-client: batch {batch} stream ended before batch_done");
        return Ok(2);
    }
    Ok(if failures > 0 { 1 } else { 0 })
}

/// `top [--interval-ms N] [--frames N]`: the server's live load, one frame
/// per tick — a summary line (queue depth, in-flight jobs, worker
/// liveness), then a row per running job with its deepest bound, conflict
/// count and elapsed time. `--frames 0` (the default) runs until
/// interrupted; `--frames 1` prints a single parseable frame and exits.
fn cmd_top(conn: &mut Connection, flags: &[String]) -> Result<i32, String> {
    let mut interval_ms = 1_000u64;
    let mut frames = 0u64;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--interval-ms" => {
                interval_ms = value
                    .parse()
                    .unwrap_or_else(|_| fail("--interval-ms needs a number"));
            }
            "--frames" => {
                frames = value
                    .parse()
                    .unwrap_or_else(|_| fail("--frames needs a number"));
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let request = Json::obj(vec![("op", Json::str("progress"))]);
    let mut shown = 0u64;
    loop {
        let reply = conn.call(&request).map_err(|e| e.to_string())?;
        let count = |name: &str| reply.get(name).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "queue={} running={} workers={} uptime_s={:.1}",
            count("queue_depth"),
            count("running_jobs"),
            count("workers_alive"),
            reply.get("uptime_s").and_then(Json::as_f64).unwrap_or(0.0),
        );
        println!(
            "{:<5} {:<6} {:<16} {:<6} {:>7} {:>10} {:>10} {:>9}",
            "JOB", "BATCH", "PROPERTY", "LEAD", "BOUND", "CONFLICTS", "DECISIONS", "ELAPSED"
        );
        for job in reply.get("running").and_then(Json::as_arr).unwrap_or(&[]) {
            let field = |name: &str| job.get(name).and_then(Json::as_u64).unwrap_or(0);
            let probe = job.get("probe");
            let effort = |name: &str| {
                probe
                    .and_then(|p| p.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            println!(
                "{:<5} {:<6} {:<16} {:<6} {:>7} {:>10} {:>10} {:>8.1}s",
                field("job"),
                field("batch"),
                job.get("property").and_then(Json::as_str).unwrap_or("?"),
                job.get("leading").and_then(Json::as_str).unwrap_or("-"),
                effort("bound"),
                effort("conflicts"),
                effort("decisions"),
                job.get("elapsed_ms").and_then(Json::as_f64).unwrap_or(0.0) / 1e3,
            );
        }
        shown += 1;
        if frames != 0 && shown >= frames {
            return Ok(0);
        }
        println!();
        std::thread::sleep(Duration::from_millis(interval_ms.max(1)));
    }
}

/// `events [--layer L] [--job N] [--limit N]`: tails the server's flight
/// recorder, one line per event, oldest first.
fn cmd_events(conn: &mut Connection, flags: &[String]) -> Result<i32, String> {
    let mut request = vec![("op", Json::str("events"))];
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--layer" => request.push(("layer", Json::str(value.clone()))),
            "--job" => request.push((
                "job",
                Json::num(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail("--job needs a number")),
                ),
            )),
            "--limit" => request.push((
                "limit",
                Json::num(
                    value
                        .parse()
                        .unwrap_or_else(|_| fail("--limit needs a number")),
                ),
            )),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let reply = conn.call(&Json::obj(request)).map_err(|e| e.to_string())?;
    let events = reply.get("events").and_then(Json::as_arr).unwrap_or(&[]);
    for event in events {
        let field = |name: &str| event.get(name).and_then(Json::as_u64).unwrap_or(0);
        // The payload words are hex strings on the wire (full-width u64s).
        let word = |name: &str| event.get(name).and_then(Json::as_str).unwrap_or("0x0");
        println!(
            "{:>10} {:>14}ns {:<9} {:<9} job={} p0={} p1={}",
            field("seq"),
            field("at_ns"),
            event.get("layer").and_then(Json::as_str).unwrap_or("?"),
            event.get("kind").and_then(Json::as_str).unwrap_or("?"),
            field("job"),
            word("p0"),
            word("p1"),
        );
    }
    eprintln!(
        "wlac-client: {} event(s) shown; {} recorded, {} overwritten, capacity {}",
        events.len(),
        reply.get("recorded").and_then(Json::as_u64).unwrap_or(0),
        reply.get("overwritten").and_then(Json::as_u64).unwrap_or(0),
        reply.get("capacity").and_then(Json::as_u64).unwrap_or(0),
    );
    Ok(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        addr: "127.0.0.1:7117".to_string(),
        connect_timeout: Duration::from_millis(5_000),
        io_timeout: Some(Duration::from_millis(150_000)),
        retries: 5,
    };
    let mut rest: &[String] = &args;
    loop {
        let value = |rest: &[String]| rest.get(1).cloned().unwrap_or_else(|| usage());
        let millis = |rest: &[String]| -> u64 { value(rest).parse().unwrap_or_else(|_| usage()) };
        match rest.first().map(String::as_str) {
            Some("--addr") => options.addr = value(rest),
            Some("--connect-timeout-ms") => {
                options.connect_timeout = Duration::from_millis(millis(rest).max(1));
            }
            Some("--io-timeout-ms") => {
                let ms = millis(rest);
                options.io_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            Some("--retries") => {
                options.retries = value(rest).parse().unwrap_or_else(|_| usage());
            }
            _ => break,
        }
        rest = &rest[2..];
    }
    let Some(command) = rest.first() else { usage() };
    let mut conn = Connection::open(&options)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", options.addr)));

    let outcome: Result<i32, String> = match (command.as_str(), &rest[1..]) {
        ("ping", []) => conn
            .call(&Json::obj(vec![("op", Json::str("ping"))]))
            .map_err(|e| e.to_string())
            .map(|_| {
                println!("pong");
                0
            }),
        ("register", [path]) => register(&mut conn, path).map(|(design, outputs)| {
            println!("design {design} outputs [{}]", outputs.join(", "));
            0
        }),
        ("check", [path, flags @ ..]) => cmd_check(&mut conn, path, flags),
        ("watch", [batch, flags @ ..]) => cmd_watch(&mut conn, batch, flags),
        ("top", flags) => cmd_top(&mut conn, flags),
        ("stats", []) => conn
            .call(&Json::obj(vec![("op", Json::str("stats"))]))
            .map_err(|e| e.to_string())
            .map(|reply| {
                println!("{}", reply.get("stats").cloned().unwrap_or(Json::Null));
                0
            }),
        ("health", []) => conn
            .call(&Json::obj(vec![("op", Json::str("health"))]))
            .map_err(|e| e.to_string())
            .map(|reply| {
                let status = reply.get("status").and_then(Json::as_str).unwrap_or("?");
                let uptime = reply.get("uptime_s").and_then(Json::as_f64).unwrap_or(0.0);
                println!("status {status} uptime_s {uptime:.1}");
                println!("{}", reply.get("checks").cloned().unwrap_or(Json::Null));
                // Probe semantics: ready exits 0, anything else exits 1.
                i32::from(reply.get("ready").and_then(Json::as_bool) != Some(true))
            }),
        ("events", flags) => cmd_events(&mut conn, flags),
        ("metrics", []) => conn
            .call(&Json::obj(vec![("op", Json::str("metrics"))]))
            .map_err(|e| e.to_string())
            .map(|reply| {
                print!(
                    "{}",
                    reply.get("prometheus").and_then(Json::as_str).unwrap_or("")
                );
                0
            }),
        ("export", [design, file]) => conn
            .call(&Json::obj(vec![
                ("op", Json::str("export_knowledge")),
                ("design", Json::str(design.clone())),
            ]))
            .map_err(|e| e.to_string())
            .and_then(|reply| {
                let hex = reply
                    .get("snapshot")
                    .and_then(Json::as_str)
                    .ok_or("reply missing `snapshot`")?;
                let bytes = wlac_server::proto::hex_decode(hex).ok_or("reply snapshot not hex")?;
                std::fs::write(file, bytes).map_err(|e| format!("cannot write {file}: {e}"))?;
                println!("exported {design} to {file}");
                Ok(0)
            }),
        ("import", [file]) => {
            let bytes =
                std::fs::read(file).unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
            conn.call(&Json::obj(vec![
                ("op", Json::str("import_knowledge")),
                (
                    "snapshot",
                    Json::str(wlac_server::proto::hex_encode(&bytes)),
                ),
            ]))
            .map_err(|e| e.to_string())
            .map(|reply| {
                println!(
                    "imported design {} ({} cached verdicts)",
                    reply.get("design").and_then(Json::as_str).unwrap_or("?"),
                    reply.get("verdicts").and_then(Json::as_u64).unwrap_or(0)
                );
                0
            })
        }
        ("shutdown", []) => conn
            .call(&Json::obj(vec![("op", Json::str("shutdown"))]))
            .map_err(|e| e.to_string())
            .map(|reply| {
                println!(
                    "server drained, {} design(s) saved",
                    reply
                        .get("saved_designs")
                        .and_then(Json::as_u64)
                        .unwrap_or(0)
                );
                0
            }),
        _ => usage(),
    };

    match outcome {
        Ok(code) => std::process::exit(code),
        Err(message) => fail(&message),
    }
}
