//! Wire-protocol vocabulary: request decoding helpers, response encoding,
//! and the hex transport for binary snapshots.
//!
//! Every frame is one line of JSON. Requests carry an `"op"` member naming
//! the operation; responses always carry `"ok"` — `true` with the payload
//! inline, or `false` with an `"error": {"code", "message"}` object. A
//! malformed frame is answered with a structured error on the same
//! connection, never a dropped socket: batch tooling on the other end wants
//! a diagnosis, not a reconnect loop.

use crate::json::Json;
use std::time::Duration;
use wlac_service::{DesignHash, JobProgress, JobResult, ServiceStats};
use wlac_telemetry::ProgressProbe;

/// Machine-readable error codes of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The frame was valid JSON but not a valid request.
    BadRequest,
    /// The `op` is not one the server knows.
    UnknownOp,
    /// A named design is not registered.
    UnknownDesign,
    /// A named batch handle does not exist.
    UnknownBatch,
    /// The design source failed to compile.
    CompileError,
    /// A property references something the design does not have.
    BadProperty,
    /// A knowledge snapshot failed validation.
    BadSnapshot,
    /// The batch is still running (for `results`).
    NotDone,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server is at its connection cap; the reply carries a
    /// `retry_after_ms` hint. Back off and reconnect.
    Overloaded,
    /// A bounded wait (or a job budget) expired before the batch finished;
    /// the work is still running — poll again.
    Timeout,
    /// An internal failure (e.g. persistence i/o).
    Internal,
}

impl ErrorCode {
    /// Every code, in wire order — the enumeration behind the per-code error
    /// counters of the `stats` and `metrics` replies.
    pub const ALL: [ErrorCode; 13] = [
        ErrorCode::BadJson,
        ErrorCode::BadRequest,
        ErrorCode::UnknownOp,
        ErrorCode::UnknownDesign,
        ErrorCode::UnknownBatch,
        ErrorCode::CompileError,
        ErrorCode::BadProperty,
        ErrorCode::BadSnapshot,
        ErrorCode::NotDone,
        ErrorCode::ShuttingDown,
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
        ErrorCode::Internal,
    ];

    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownDesign => "unknown_design",
            ErrorCode::UnknownBatch => "unknown_batch",
            ErrorCode::CompileError => "compile_error",
            ErrorCode::BadProperty => "bad_property",
            ErrorCode::BadSnapshot => "bad_snapshot",
            ErrorCode::NotDone => "not_done",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured failure reply.
pub fn error_reply(code: ErrorCode, message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::str(code.as_str())),
                ("message", Json::Str(message.into())),
            ]),
        ),
    ])
}

/// A structured failure reply carrying a back-off hint: the client should
/// wait `retry_after` and try again (used by the connection-cap shed path).
pub fn error_reply_with_retry(
    code: ErrorCode,
    message: impl Into<String>,
    retry_after: Duration,
) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::str(code.as_str())),
                ("message", Json::Str(message.into())),
                ("retry_after_ms", Json::num(retry_after.as_millis() as u64)),
            ]),
        ),
    ])
}

/// A success reply with the given payload members.
pub fn ok_reply(mut payload: Vec<(&str, Json)>) -> Json {
    let mut members = vec![("ok", Json::Bool(true))];
    members.append(&mut payload);
    Json::obj(members)
}

/// Formats a design hash for the wire (`d` + 16 hex digits — the same
/// spelling `DesignHash` displays as).
pub fn design_to_wire(design: DesignHash) -> String {
    design.to_string()
}

/// Parses the wire spelling of a design hash.
pub fn design_from_wire(text: &str) -> Option<DesignHash> {
    let digits = text.strip_prefix('d')?;
    if digits.len() != 16 {
        return None;
    }
    u64::from_str_radix(digits, 16).ok().map(DesignHash)
}

/// Lower-case hex of a binary blob (snapshot transport).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`].
pub fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(text.get(i..i + 2)?, 16).ok())
        .collect()
}

fn duration_ms(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

/// Encodes one job result for the wire.
pub fn job_result_to_wire(result: &JobResult) -> Json {
    let verdict = &result.verdict;
    let mut v = vec![("label", Json::str(verdict.label()))];
    match verdict {
        wlac_portfolio::Verdict::Holds { proved, frames } => {
            v.push(("proved", Json::Bool(*proved)));
            v.push(("frames", Json::num(*frames as u64)));
        }
        wlac_portfolio::Verdict::WitnessAbsent { frames } => {
            v.push(("frames", Json::num(*frames as u64)));
        }
        wlac_portfolio::Verdict::Violated { trace }
        | wlac_portfolio::Verdict::WitnessFound { trace } => {
            v.push(("trace_cycles", Json::num(trace.len() as u64)));
        }
        wlac_portfolio::Verdict::Unknown { reason } => {
            v.push(("reason", Json::str(reason.clone())));
        }
        wlac_portfolio::Verdict::Timeout { budget } => {
            v.push(("budget_ms", Json::num(budget.as_millis() as u64)));
        }
    }
    Json::obj(vec![
        ("property", Json::str(result.property.clone())),
        ("design", Json::str(design_to_wire(result.design))),
        ("verdict", Json::obj(v)),
        (
            "winner",
            result
                .winner
                .map(|w| Json::str(w.to_string()))
                .unwrap_or(Json::Null),
        ),
        ("from_cache", Json::Bool(result.from_cache)),
        ("engines_spawned", Json::num(result.engines_spawned as u64)),
        ("wall_ms", duration_ms(result.wall)),
    ])
}

/// Encodes one progress probe for the wire (the effort counters of the
/// `progress` op's rows and the `subscribe` stream's `progress` events).
pub fn probe_to_wire(probe: &ProgressProbe) -> Json {
    Json::obj(vec![
        ("bound", Json::num(probe.bound)),
        ("decisions", Json::num(probe.decisions)),
        ("conflicts", Json::num(probe.conflicts)),
        ("backtracks", Json::num(probe.backtracks)),
        ("restarts", Json::num(probe.restarts)),
        ("implications", Json::num(probe.implications)),
        ("phase_ms", Json::Num(probe.phase_nanos as f64 / 1e6)),
        ("probes", Json::num(probe.probes)),
    ])
}

/// Encodes one in-flight job's live progress for the wire.
pub fn job_progress_to_wire(progress: &JobProgress) -> Json {
    Json::obj(vec![
        ("job", Json::num(progress.job)),
        ("batch", Json::num(progress.batch.raw())),
        ("index", Json::num(progress.index as u64)),
        ("property", Json::str(progress.property.clone())),
        ("design", Json::str(design_to_wire(progress.design))),
        ("elapsed_ms", duration_ms(progress.elapsed)),
        (
            "leading",
            progress
                .leading
                .map(|e| Json::str(e.to_string()))
                .unwrap_or(Json::Null),
        ),
        ("probe", probe_to_wire(&progress.probe)),
    ])
}

/// Server-level durability counters surfaced in the `stats` reply alongside
/// the service counters.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityStats {
    /// The configured durability mode's wire spelling
    /// (`snapshot`/`journal`/`strict`).
    pub mode: &'static str,
    /// Snapshots successfully loaded at boot.
    pub loaded_snapshots: usize,
    /// Snapshot files rejected at boot (corrupt, torn, foreign).
    pub snapshots_rejected_at_boot: usize,
    /// Journal records replayed into service state at boot.
    pub boot_replayed_records: u64,
    /// Journal bytes quarantined at boot (torn tails, unreadable files).
    pub journal_quarantined_bytes: u64,
}

/// Encodes the service counters for the wire.
pub fn stats_to_wire(stats: &ServiceStats, durability: &DurabilityStats) -> Json {
    let loaded_snapshots = durability.loaded_snapshots;
    Json::obj(vec![
        ("designs", Json::num(stats.designs as u64)),
        ("cache_hits", Json::num(stats.cache_hits)),
        ("cache_misses", Json::num(stats.cache_misses)),
        ("cache_evictions", Json::num(stats.cache_evictions)),
        ("cached_verdicts", Json::num(stats.cached_verdicts as u64)),
        ("predicted_races", Json::num(stats.predicted_races)),
        ("clauses_banked", Json::num(stats.clauses_banked)),
        ("datapath_facts", Json::num(stats.datapath_facts)),
        ("estg_conflicts", Json::num(stats.estg_conflicts)),
        ("quarantined_jobs", Json::num(stats.quarantined_jobs)),
        ("timed_out_jobs", Json::num(stats.timed_out_jobs)),
        ("workers_respawned", Json::num(stats.workers_respawned)),
        ("workers_alive", Json::num(stats.workers_alive as u64)),
        ("queue_depth", Json::num(stats.queue_depth as u64)),
        ("running_jobs", Json::num(stats.running_jobs as u64)),
        ("loaded_snapshots", Json::num(loaded_snapshots as u64)),
        ("durability", Json::str(durability.mode)),
        (
            "snapshots_rejected_at_boot",
            Json::num(durability.snapshots_rejected_at_boot as u64),
        ),
        (
            "boot_replayed_records",
            Json::num(durability.boot_replayed_records),
        ),
        (
            "journal_quarantined_bytes",
            Json::num(durability.journal_quarantined_bytes),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_wire_round_trip() {
        let design = DesignHash(0x0123_4567_89ab_cdef);
        assert_eq!(design_from_wire(&design_to_wire(design)), Some(design));
        assert_eq!(design_from_wire("nonsense"), None);
        assert_eq!(design_from_wire("d123"), None);
        assert_eq!(design_from_wire("dzzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes));
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }

    #[test]
    fn error_replies_are_structured() {
        let reply = error_reply(ErrorCode::BadJson, "expected a value at byte 0");
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
        let error = reply.get("error").unwrap();
        assert_eq!(error.get("code").unwrap().as_str(), Some("bad_json"));
        assert!(error.get("message").unwrap().as_str().is_some());
    }
}
