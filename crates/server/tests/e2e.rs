//! End-to-end socket tests: a real `Server` on an ephemeral port, driven by
//! a real `TcpStream` — protocol behaviour, error replies, concurrency, and
//! the restart-warm persistence loop.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wlac_server::{Json, Server, ServerConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-server-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// A saturating counter in the Verilog subset the frontend compiles
/// (registers reset to zero); `ok` asserts it stays below 11 (holds),
/// `bad` asserts it stays below 5 (violated around cycle 5).
const COUNTER_V: &str = r#"
    module counter(input clk, output ok, output bad);
      reg [7:0] q;
      always @(posedge clk) begin
        if (q == 10)
          q <= 10;
        else
          q <= q + 1;
      end
      assign ok = q < 11;
      assign bad = q < 5;
    endmodule
"#;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// Sends one raw line and reads one reply line.
    fn raw(&mut self, line: &str) -> Json {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        assert!(!reply.is_empty(), "server closed the connection");
        Json::parse(reply.trim_end()).expect("reply is valid JSON")
    }

    fn call(&mut self, request: Json) -> Json {
        let reply = self.raw(&request.to_string());
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} failed: {reply}"
        );
        reply
    }

    fn call_err(&mut self, line: &str) -> String {
        let reply = self.raw(line);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "expected an error reply for {line}, got {reply}"
        );
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error reply carries a code")
            .to_string()
    }

    fn register_counter(&mut self) -> String {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("register_design")),
            ("source", Json::str(COUNTER_V)),
        ]));
        reply
            .get("design")
            .and_then(Json::as_str)
            .expect("design hash")
            .to_string()
    }

    fn submit_both(&mut self, design: &str) -> u64 {
        let job = |monitor: &str| {
            Json::obj(vec![
                ("design", Json::str(design)),
                (
                    "property",
                    Json::obj(vec![
                        ("kind", Json::str("always")),
                        ("monitor", Json::str(monitor)),
                    ]),
                ),
            ])
        };
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("submit_batch")),
            ("jobs", Json::Arr(vec![job("ok"), job("bad")])),
        ]));
        reply.get("batch").and_then(Json::as_u64).expect("batch id")
    }

    fn wait(&mut self, batch: u64) -> Vec<Json> {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("wait")),
            ("batch", Json::num(batch)),
        ]));
        reply
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array")
            .to_vec()
    }

    fn shutdown(&mut self) {
        self.call(Json::obj(vec![("op", Json::str("shutdown"))]));
    }

    /// Sends one line without reading a reply (the `subscribe` handshake —
    /// everything after it is pushed by the server).
    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .expect("send");
    }

    /// Reads one pushed event frame.
    fn read_event(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("receive");
        assert!(!line.is_empty(), "stream ended early");
        let frame = Json::parse(line.trim_end()).expect("event frame is valid JSON");
        assert_eq!(
            frame.get("ok").and_then(Json::as_bool),
            Some(true),
            "pushed frame failed: {frame}"
        );
        frame
    }
}

fn quick_config() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    config.service.workers = 2;
    config.service.portfolio.checker.max_frames = 6;
    config.service.portfolio.checker.time_limit = Duration::from_secs(30);
    config
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>, usize) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let loaded = server.loaded_snapshots();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, loaded)
}

fn label_of(result: &Json) -> String {
    result
        .get("verdict")
        .and_then(|v| v.get("label"))
        .and_then(Json::as_str)
        .expect("verdict label")
        .to_string()
}

fn cached(result: &Json) -> bool {
    result
        .get("from_cache")
        .and_then(Json::as_bool)
        .expect("from_cache")
}

#[test]
fn protocol_round_trip_and_errors() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);

    // Malformed frames get structured error replies, and the connection
    // survives every one of them.
    assert_eq!(client.call_err("this is not json"), "bad_json");
    assert_eq!(client.call_err("[1,2,3]"), "bad_request");
    assert_eq!(client.call_err("{\"op\":\"frobnicate\"}"), "unknown_op");
    assert_eq!(
        client.call_err("{\"op\":\"register_design\",\"source\":\"module m(; endmodule\"}"),
        "compile_error"
    );
    assert_eq!(
        client.call_err("{\"op\":\"poll\",\"batch\":123456}"),
        "unknown_batch"
    );
    assert_eq!(client.call_err("{\"op\":\"results\"}"), "bad_request");

    // The connection is still healthy: full verification round-trip.
    client.call(Json::obj(vec![("op", Json::str("ping"))]));
    let design = client.register_counter();
    assert!(design.starts_with('d'), "wire hash: {design}");

    // Property referencing a missing / wide monitor.
    let bad_job = format!(
        "{{\"op\":\"submit_batch\",\"jobs\":[{{\"design\":\"{design}\",\
         \"property\":{{\"monitor\":\"nope\"}}}}]}}"
    );
    assert_eq!(client.call_err(&bad_job), "bad_property");
    let wide_job = format!(
        "{{\"op\":\"submit_batch\",\"jobs\":[{{\"design\":\"{design}\",\
         \"property\":{{\"monitor\":\"q\"}}}}]}}"
    );
    assert_eq!(client.call_err(&wide_job), "bad_property");

    let batch = client.submit_both(&design);
    // poll until done, then fetch results both ways.
    loop {
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("poll")),
            ("batch", Json::num(batch)),
        ]));
        if reply.get("done").and_then(Json::as_bool) == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let results = client.wait(batch);
    assert_eq!(results.len(), 2);
    assert_eq!(label_of(&results[0]), "holds(bound)");
    assert_eq!(label_of(&results[1]), "violated");
    assert!(results[1]
        .get("verdict")
        .and_then(|v| v.get("trace_cycles"))
        .and_then(Json::as_u64)
        .is_some());

    // A second identical submission is answered from the verdict cache.
    let batch = client.submit_both(&design);
    let warm = client.wait(batch);
    assert!(warm.iter().all(cached), "{warm:?}");

    // Two clients at once multiplex onto the same service.
    let mut second = Client::connect(addr);
    let design2 = second.register_counter();
    assert_eq!(design, design2, "same structure, same design");
    let stats = second.call(Json::obj(vec![("op", Json::str("stats"))]));
    let designs = stats
        .get("stats")
        .and_then(|s| s.get("designs"))
        .and_then(Json::as_u64);
    assert_eq!(designs, Some(1));

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn restart_warm_serves_persisted_verdicts() {
    let dir = TempDir::new();

    // Session 1: cold run, then graceful shutdown (drain + save).
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 0, "first boot is cold");
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let cold = client.wait(batch);
    assert!(cold.iter().all(|r| !cached(r)));
    let cold_labels: Vec<String> = cold.iter().map(label_of).collect();
    client.shutdown();
    handle.join().expect("server thread");
    // Each autosave beyond the first also keeps the previous generation as
    // `<file>.bak`; only the primary counts as "the snapshot".
    let snapshots: Vec<_> = fs::read_dir(&dir.0)
        .expect("data dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".wlacsnap"))
        .collect();
    assert_eq!(
        snapshots.len(),
        1,
        "one design, one snapshot: {snapshots:?}"
    );

    // Session 2: a fresh process-equivalent (new Server, same data dir)
    // answers the same batch from the persisted verdict cache.
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 1, "snapshot reloaded at boot");
    let mut client = Client::connect(addr);
    // Note: re-registration is idempotent (the boot reload already brought
    // the design in) — clients do not need to know the server restarted.
    let design2 = client.register_counter();
    assert_eq!(design, design2);
    let batch = client.submit_both(&design2);
    let warm = client.wait(batch);
    assert!(
        warm.iter().all(cached),
        "restart-warm batch must hit the persisted cache: {warm:?}"
    );
    assert!(warm
        .iter()
        .all(|r| r.get("engines_spawned").and_then(Json::as_u64) == Some(0)));
    let warm_labels: Vec<String> = warm.iter().map(label_of).collect();
    assert_eq!(
        cold_labels, warm_labels,
        "verdicts identical across restart"
    );
    client.shutdown();
    handle.join().expect("server thread");

    // Session 3: a corrupted snapshot falls back to the last-good `.bak`
    // generation — the boot stays warm.
    let snap_path = dir.0.join(&snapshots[0]);
    let good_bytes = fs::read(&snap_path).expect("snapshot bytes");
    let mut bytes = good_bytes.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&snap_path, &bytes).expect("corrupt snapshot");
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 1, "corrupt snapshot boots from last-good backup");
    let mut client = Client::connect(addr);
    client.shutdown();
    handle.join().expect("server thread");

    // Session 4: corrupt primary and no backup — skipped, not trusted; the
    // boot is cold but clean, and the rejection is visible in the stats
    // reply instead of silent.
    fs::write(&snap_path, &bytes).expect("corrupt snapshot");
    fs::remove_file(dir.0.join(format!("{}.bak", snapshots[0]))).expect("remove backup");
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 0, "corrupt snapshot without backup must be skipped");
    let mut client = Client::connect(addr);
    let stats = client
        .call(Json::obj(vec![("op", Json::str("stats"))]))
        .get("stats")
        .cloned()
        .expect("stats object");
    assert_eq!(
        stats
            .get("snapshots_rejected_at_boot")
            .and_then(Json::as_u64),
        Some(1),
        "the rejected snapshot is counted: {stats}"
    );
    assert_eq!(
        stats.get("loaded_snapshots").and_then(Json::as_u64),
        Some(0)
    );
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn knowledge_export_import_over_the_wire() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);

    let reply = client.call(Json::obj(vec![
        ("op", Json::str("export_knowledge")),
        ("design", Json::str(design.clone())),
    ]));
    let hex = reply
        .get("snapshot")
        .and_then(Json::as_str)
        .expect("snapshot hex")
        .to_string();
    client.shutdown();
    handle.join().expect("server thread");

    // A second, completely unrelated server warm-starts from the exported
    // blob alone: import registers the design and fills its caches.
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("import_knowledge")),
        ("snapshot", Json::str(hex.clone())),
    ]));
    assert_eq!(
        reply.get("design").and_then(Json::as_str),
        Some(design.as_str())
    );
    assert_eq!(reply.get("verdicts").and_then(Json::as_u64), Some(2));
    let batch = client.submit_both(&design);
    let warm = client.wait(batch);
    assert!(warm.iter().all(cached), "{warm:?}");

    // Importing a truncated blob is rejected with a structured error.
    let truncated = &hex[..(hex.len() / 2) & !1];
    let line = format!("{{\"op\":\"import_knowledge\",\"snapshot\":\"{truncated}\"}}");
    assert_eq!(client.call_err(&line), "bad_snapshot");
    // Importing under the wrong design name is rejected too.
    let line = format!(
        "{{\"op\":\"import_knowledge\",\"design\":\"d0000000000000000\",\"snapshot\":\"{hex}\"}}"
    );
    assert_eq!(client.call_err(&line), "bad_snapshot");

    client.shutdown();
    handle.join().expect("server thread");
}

/// Parses a Prometheus text exposition into (name, value) samples, skipping
/// `# TYPE` comments; label-bearing samples keep the label block in the
/// name. Panics on any line that does not scan — the acceptance criterion
/// is "parseable", not "roughly shaped".
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable exposition line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("bad sample value in {line:?}: {e}"));
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        samples.push((name.to_string(), value));
    }
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> Option<f64> {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, value)| *value)
}

#[test]
fn stats_reports_per_op_and_error_counters() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    client.call(Json::obj(vec![("op", Json::str("ping"))]));
    client.call(Json::obj(vec![("op", Json::str("ping"))]));
    assert_eq!(client.call_err("{\"op\":\"frobnicate\"}"), "unknown_op");
    assert_eq!(client.call_err("not json"), "bad_json");
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);

    let reply = client.call(Json::obj(vec![("op", Json::str("stats"))]));
    let ops = reply.get("ops").expect("ops object");
    let count = |name: &str| ops.get(name).and_then(Json::as_u64).expect(name);
    assert_eq!(count("ping"), 2);
    assert_eq!(count("register_design"), 1);
    assert_eq!(count("submit_batch"), 1);
    assert_eq!(count("wait"), 1);
    assert_eq!(
        count("unknown"),
        1,
        "frobnicate lands in the unknown bucket"
    );
    assert_eq!(count("invalid"), 1, "non-JSON lands in the invalid bucket");
    assert_eq!(count("shutdown"), 0);
    let errors = reply.get("errors").expect("errors object");
    let errs = |name: &str| errors.get(name).and_then(Json::as_u64).expect(name);
    assert_eq!(errs("unknown_op"), 1);
    assert_eq!(errs("bad_json"), 1);
    assert_eq!(errs("compile_error"), 0);

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn metrics_exposition_covers_every_layer() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);
    // Repeat one property so the cache-hit counter moves too.
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);

    let reply = client.call(Json::obj(vec![("op", Json::str("metrics"))]));
    let text = reply
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text");
    let samples = parse_prometheus(text);

    // Core: the raced ATPG engine's search effort is aggregated.
    assert!(sample(&samples, "core_gate_evaluations_total").expect("core counter") > 0.0);
    // Portfolio: two raced batches of two jobs, minus cache hits.
    assert!(sample(&samples, "portfolio_races_total").expect("race counter") >= 2.0);
    // Service: queue/worker gauges exist and jobs flowed through.
    assert_eq!(sample(&samples, "service_queue_depth"), Some(0.0));
    assert!(sample(&samples, "service_jobs_completed_total").expect("jobs") >= 4.0);
    assert!(sample(&samples, "service_cache_hits_total").expect("hits") >= 2.0);
    // Server: per-op accounting, including histogram quantile samples.
    assert_eq!(
        sample(&samples, "server_requests_submit_batch_total"),
        Some(2.0)
    );
    assert!(
        samples
            .iter()
            .any(|(n, _)| n.starts_with("server_op_wait_wall_ns{quantile=")),
        "wait latency histogram missing from exposition"
    );
    assert!(sample(&samples, "server_connections_total").expect("connections") >= 1.0);

    // The JSON exposition is a real object over the same registry.
    let json = reply.get("metrics").expect("metrics object");
    assert!(json
        .get("service_jobs_completed_total")
        .and_then(Json::as_f64)
        .is_some());
    assert!(json
        .get("server_op_wait_wall_ns_p50")
        .and_then(Json::as_f64)
        .is_some());

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn health_build_and_uptime_surface_on_a_live_server() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);

    // A freshly-booted idle server is live, ready, and not degraded.
    let reply = client.call(Json::obj(vec![("op", Json::str("health"))]));
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(reply.get("live").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("degraded").and_then(Json::as_bool), Some(false));
    assert!(reply.get("uptime_s").and_then(Json::as_f64).is_some());
    let checks = reply.get("checks").expect("checks object");
    for check in ["workers", "queue", "durability", "slo"] {
        assert_eq!(
            checks
                .get(check)
                .and_then(|c| c.get("ok"))
                .and_then(Json::as_bool),
            Some(true),
            "{check} check: {reply}"
        );
    }
    assert_eq!(
        checks
            .get("workers")
            .and_then(|w| w.get("alive"))
            .and_then(Json::as_u64),
        Some(2)
    );
    // The SLO window has seen no requests yet (health itself is recorded
    // after it replies), so the objective trivially holds.
    assert_eq!(
        checks
            .get("slo")
            .and_then(|s| s.get("error_rate"))
            .and_then(Json::as_f64),
        Some(0.0)
    );

    // `stats` carries the build version and uptime.
    let reply = client.call(Json::obj(vec![("op", Json::str("stats"))]));
    assert_eq!(
        reply.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(reply.get("uptime_s").and_then(Json::as_f64).is_some());

    // The Prometheus exposition carries the build-info gauge (the one
    // labelled sample) and the uptime/recorder gauges.
    let reply = client.call(Json::obj(vec![("op", Json::str("metrics"))]));
    let text = reply
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text");
    assert!(
        text.contains(&format!(
            "wlac_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )),
        "build info missing from exposition"
    );
    let samples = parse_prometheus(text);
    assert!(sample(&samples, "server_uptime_seconds").expect("uptime gauge") >= 0.0);
    assert!(sample(&samples, "server_recorder_recorded").expect("recorder gauge") > 0.0);
    assert_eq!(sample(&samples, "server_recorder_overwrites"), Some(0.0));
    assert_eq!(sample(&samples, "server_trace_dropped_records"), Some(0.0));

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn events_tails_the_flight_recorder_over_the_wire() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);

    // Unfiltered tail: the batch left events in every serving layer.
    let reply = client.call(Json::obj(vec![("op", Json::str("events"))]));
    let events = reply.get("events").and_then(Json::as_arr).expect("events");
    assert!(!events.is_empty());
    assert!(reply.get("recorded").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(reply.get("capacity").and_then(Json::as_u64).unwrap_or(0) > 0);
    let layer_of = |e: &Json| {
        e.get("layer")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    for layer in ["core", "portfolio", "service"] {
        assert!(
            events.iter().any(|e| layer_of(e) == layer),
            "no {layer} events in {events:?}"
        );
    }
    // Events are in recording order and payload words travel as hex strings.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.get("seq").and_then(Json::as_u64).expect("seq"))
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    assert!(events.iter().all(|e| e
        .get("p0")
        .and_then(Json::as_str)
        .is_some_and(|p| p.starts_with("0x"))));

    // Layer filter narrows to that layer only.
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("events")),
        ("layer", Json::str("service")),
    ]));
    let service_events = reply.get("events").and_then(Json::as_arr).expect("events");
    assert!(!service_events.is_empty());
    assert!(service_events.iter().all(|e| layer_of(e) == "service"));

    // Job filter follows one job across layers: every event it returns is
    // stamped with that job, and the job's service-side dequeue is there.
    let job = service_events
        .iter()
        .find_map(|e| e.get("job").and_then(Json::as_u64).filter(|&j| j > 0))
        .expect("a job-stamped service event");
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("events")),
        ("job", Json::num(job)),
    ]));
    let job_events = reply.get("events").and_then(Json::as_arr).expect("events");
    assert!(job_events
        .iter()
        .all(|e| e.get("job").and_then(Json::as_u64) == Some(job)));
    assert!(job_events
        .iter()
        .any(|e| e.get("kind").and_then(Json::as_str) == Some("dequeue")));

    // The limit keeps only the newest events.
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("events")),
        ("limit", Json::num(1)),
    ]));
    let tail = reply.get("events").and_then(Json::as_arr).expect("events");
    assert_eq!(tail.len(), 1);
    // The survivor is the newest event: at or past everything the earlier
    // snapshot saw (the requests in between recorded more).
    assert!(
        tail[0].get("seq").and_then(Json::as_u64) >= seqs.last().copied(),
        "limit kept an old event: {tail:?}"
    );

    // An unknown layer is a structured error naming the vocabulary.
    assert_eq!(
        client.call_err("{\"op\":\"events\",\"layer\":\"warp\"}"),
        "bad_request"
    );

    client.shutdown();
    handle.join().expect("server thread");
}

/// Drains one subscription to its `batch_done`, returning every event frame
/// in arrival order (the `subscribed` acknowledgement excluded).
fn drain_stream(sub: &mut Client, total: usize) -> Vec<Json> {
    let mut events = Vec::new();
    loop {
        let frame = sub.read_event();
        let kind = frame
            .get("event")
            .and_then(Json::as_str)
            .expect("pushed frame carries an event")
            .to_string();
        if kind == "batch_done" {
            assert_eq!(
                frame.get("total").and_then(Json::as_u64),
                Some(total as u64)
            );
            return events;
        }
        events.push(frame);
    }
}

#[test]
fn subscribe_streams_progress_before_every_verdict() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);

    // A second connection rides the event stream; nobody ever polls.
    let mut sub = Client::connect(addr);
    sub.send(&format!(
        "{{\"op\":\"subscribe\",\"batch\":{batch},\"interval_ms\":5}}"
    ));
    let ack = sub.read_event();
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("subscribed"));
    assert_eq!(ack.get("batch").and_then(Json::as_u64), Some(batch));
    assert_eq!(ack.get("total").and_then(Json::as_u64), Some(2));
    let events = drain_stream(&mut sub, 2);

    // The ordering contract: for every job, at least one `progress` frame
    // with a nonzero bound arrives before its `verdict` frame.
    for index in 0..2u64 {
        let verdict_at = events
            .iter()
            .position(|e| {
                e.get("event").and_then(Json::as_str) == Some("verdict")
                    && e.get("index").and_then(Json::as_u64) == Some(index)
            })
            .unwrap_or_else(|| panic!("no verdict for job {index}"));
        assert!(
            events[..verdict_at].iter().any(|e| {
                e.get("event").and_then(Json::as_str) == Some("progress")
                    && e.get("index").and_then(Json::as_u64) == Some(index)
                    && e.get("probe")
                        .and_then(|p| p.get("bound"))
                        .and_then(Json::as_u64)
                        .is_some_and(|b| b > 0)
            }),
            "no nonzero-bound progress before the verdict of job {index}: {events:?}"
        );
    }
    // The verdicts themselves ride the stream (in completion order), full
    // result objects included.
    let mut streamed: Vec<(u64, String)> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("verdict"))
        .map(|e| {
            (
                e.get("index").and_then(Json::as_u64).expect("index"),
                label_of(e.get("result").expect("verdict carries the result")),
            )
        })
        .collect();
    streamed.sort();
    assert_eq!(
        streamed,
        [(0, "holds(bound)".into()), (1, "violated".into())]
    );

    // The stream ends cleanly and the connection stays a normal
    // request/reply connection.
    sub.call(Json::obj(vec![("op", Json::str("ping"))]));

    // A late subscriber sees the completed batch replayed in full: final
    // progress then verdict per job, then batch_done.
    sub.send(&format!("{{\"op\":\"subscribe\",\"batch\":{batch}}}"));
    let ack = sub.read_event();
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("subscribed"));
    let replay = drain_stream(&mut sub, 2);
    let kinds: Vec<&str> = replay
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert_eq!(
        kinds,
        ["progress", "verdict", "progress", "verdict"],
        "completed batches replay deterministically"
    );

    // The results are still there (subscribe never retires a batch), and
    // the whole exchange used zero `poll` calls.
    let results = client.wait(batch);
    assert_eq!(results.len(), 2);
    let reply = client.call(Json::obj(vec![("op", Json::str("stats"))]));
    let ops = reply.get("ops").expect("ops object");
    assert_eq!(ops.get("poll").and_then(Json::as_u64), Some(0));
    assert_eq!(ops.get("subscribe").and_then(Json::as_u64), Some(2));

    // Even a retired (retrieved) batch replays while it is retained; only a
    // genuinely unknown handle is a structured reject — after which the
    // connection keeps serving.
    sub.send(&format!("{{\"op\":\"subscribe\",\"batch\":{batch}}}"));
    let ack = sub.read_event();
    assert_eq!(ack.get("event").and_then(Json::as_str), Some("subscribed"));
    drain_stream(&mut sub, 2);
    assert_eq!(
        sub.call_err("{\"op\":\"subscribe\",\"batch\":999999}"),
        "unknown_batch"
    );
    sub.call(Json::obj(vec![("op", Json::str("ping"))]));

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn progress_op_reports_server_load_and_batch_state() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);

    // Idle server: zero queue, zero running, full worker quorum.
    let reply = client.call(Json::obj(vec![("op", Json::str("progress"))]));
    assert_eq!(reply.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(reply.get("running_jobs").and_then(Json::as_u64), Some(0));
    assert_eq!(reply.get("workers_alive").and_then(Json::as_u64), Some(2));
    assert!(reply.get("uptime_s").and_then(Json::as_f64).is_some());
    assert_eq!(
        reply.get("running").and_then(Json::as_arr).map(|r| r.len()),
        Some(0)
    );

    // A completed batch reports done with nothing running.
    let design = client.register_counter();
    // A batch nobody submitted is a structured reject.
    assert_eq!(
        client.call_err("{\"op\":\"progress\",\"batch\":999999}"),
        "unknown_batch"
    );
    let batch = client.submit_both(&design);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("progress")),
            ("batch", Json::num(batch)),
        ]));
        assert_eq!(reply.get("total").and_then(Json::as_u64), Some(2));
        if reply.get("done").and_then(Json::as_bool) == Some(true) {
            assert_eq!(reply.get("completed").and_then(Json::as_u64), Some(2));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "batch never completed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn trace_check_profiles_one_property() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();

    let reply = client.call(Json::obj(vec![
        ("op", Json::str("trace_check")),
        ("design", Json::str(design.clone())),
        (
            "property",
            Json::obj(vec![
                ("kind", Json::str("always")),
                ("monitor", Json::str("bad")),
            ]),
        ),
    ]));
    let label = reply
        .get("verdict")
        .and_then(|v| v.get("label"))
        .and_then(Json::as_str)
        .expect("verdict label");
    assert_eq!(label, "violated");
    let elapsed_ms = reply
        .get("elapsed_ms")
        .and_then(Json::as_f64)
        .expect("elapsed_ms");
    let phases = reply.get("phases").expect("phases object");
    let phase = |name: &str| phases.get(name).and_then(Json::as_f64).expect(name);
    let total_ns = phase("total_ns");
    let summed: f64 = [
        "implication_ns",
        "justification_ns",
        "decision_ns",
        "datapath_ns",
        "sat_leaf_ns",
        "backtrack_ns",
        "other_ns",
    ]
    .iter()
    .map(|n| phase(n))
    .sum();
    assert_eq!(summed, total_ns, "total must be the sum of the phases");
    // The acceptance bound: the phase breakdown accounts for the check's
    // wall clock to within 10%.
    let elapsed_ns = elapsed_ms * 1e6;
    assert!(
        (total_ns - elapsed_ns).abs() <= (elapsed_ns / 10.0).max(1e6),
        "phase sum {total_ns}ns diverges from elapsed {elapsed_ns}ns"
    );
    // The span events narrate the search.
    let events = reply.get("events").and_then(Json::as_arr).expect("events");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"search"), "{names:?}");
    assert!(names.contains(&"bound"), "{names:?}");
    let stats = reply.get("stats").expect("stats object");
    assert!(
        stats
            .get("gate_evaluations")
            .and_then(Json::as_u64)
            .expect("gate_evaluations")
            > 0
    );
    assert_eq!(
        reply.get("events_dropped").and_then(Json::as_u64),
        Some(0),
        "8192-event ring must not drop on this tiny check"
    );

    // A trace_check against an unregistered design fails cleanly.
    assert_eq!(
        client.call_err(
            "{\"op\":\"trace_check\",\"design\":\"d0000000000000000\",\
             \"property\":{\"monitor\":\"ok\"}}"
        ),
        "unknown_design"
    );

    client.shutdown();
    handle.join().expect("server thread");
}
