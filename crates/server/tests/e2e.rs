//! End-to-end socket tests: a real `Server` on an ephemeral port, driven by
//! a real `TcpStream` — protocol behaviour, error replies, concurrency, and
//! the restart-warm persistence loop.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wlac_server::{Json, Server, ServerConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-server-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// A saturating counter in the Verilog subset the frontend compiles
/// (registers reset to zero); `ok` asserts it stays below 11 (holds),
/// `bad` asserts it stays below 5 (violated around cycle 5).
const COUNTER_V: &str = r#"
    module counter(input clk, output ok, output bad);
      reg [7:0] q;
      always @(posedge clk) begin
        if (q == 10)
          q <= 10;
        else
          q <= q + 1;
      end
      assign ok = q < 11;
      assign bad = q < 5;
    endmodule
"#;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// Sends one raw line and reads one reply line.
    fn raw(&mut self, line: &str) -> Json {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        self.writer.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        assert!(!reply.is_empty(), "server closed the connection");
        Json::parse(reply.trim_end()).expect("reply is valid JSON")
    }

    fn call(&mut self, request: Json) -> Json {
        let reply = self.raw(&request.to_string());
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} failed: {reply}"
        );
        reply
    }

    fn call_err(&mut self, line: &str) -> String {
        let reply = self.raw(line);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "expected an error reply for {line}, got {reply}"
        );
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error reply carries a code")
            .to_string()
    }

    fn register_counter(&mut self) -> String {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("register_design")),
            ("source", Json::str(COUNTER_V)),
        ]));
        reply
            .get("design")
            .and_then(Json::as_str)
            .expect("design hash")
            .to_string()
    }

    fn submit_both(&mut self, design: &str) -> u64 {
        let job = |monitor: &str| {
            Json::obj(vec![
                ("design", Json::str(design)),
                (
                    "property",
                    Json::obj(vec![
                        ("kind", Json::str("always")),
                        ("monitor", Json::str(monitor)),
                    ]),
                ),
            ])
        };
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("submit_batch")),
            ("jobs", Json::Arr(vec![job("ok"), job("bad")])),
        ]));
        reply.get("batch").and_then(Json::as_u64).expect("batch id")
    }

    fn wait(&mut self, batch: u64) -> Vec<Json> {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("wait")),
            ("batch", Json::num(batch)),
        ]));
        reply
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array")
            .to_vec()
    }

    fn shutdown(&mut self) {
        self.call(Json::obj(vec![("op", Json::str("shutdown"))]));
    }
}

fn quick_config() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    config.service.workers = 2;
    config.service.portfolio.checker.max_frames = 6;
    config.service.portfolio.checker.time_limit = Duration::from_secs(30);
    config
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>, usize) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let loaded = server.loaded_snapshots();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, loaded)
}

fn label_of(result: &Json) -> String {
    result
        .get("verdict")
        .and_then(|v| v.get("label"))
        .and_then(Json::as_str)
        .expect("verdict label")
        .to_string()
}

fn cached(result: &Json) -> bool {
    result
        .get("from_cache")
        .and_then(Json::as_bool)
        .expect("from_cache")
}

#[test]
fn protocol_round_trip_and_errors() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);

    // Malformed frames get structured error replies, and the connection
    // survives every one of them.
    assert_eq!(client.call_err("this is not json"), "bad_json");
    assert_eq!(client.call_err("[1,2,3]"), "bad_request");
    assert_eq!(client.call_err("{\"op\":\"frobnicate\"}"), "unknown_op");
    assert_eq!(
        client.call_err("{\"op\":\"register_design\",\"source\":\"module m(; endmodule\"}"),
        "compile_error"
    );
    assert_eq!(
        client.call_err("{\"op\":\"poll\",\"batch\":123456}"),
        "unknown_batch"
    );
    assert_eq!(client.call_err("{\"op\":\"results\"}"), "bad_request");

    // The connection is still healthy: full verification round-trip.
    client.call(Json::obj(vec![("op", Json::str("ping"))]));
    let design = client.register_counter();
    assert!(design.starts_with('d'), "wire hash: {design}");

    // Property referencing a missing / wide monitor.
    let bad_job = format!(
        "{{\"op\":\"submit_batch\",\"jobs\":[{{\"design\":\"{design}\",\
         \"property\":{{\"monitor\":\"nope\"}}}}]}}"
    );
    assert_eq!(client.call_err(&bad_job), "bad_property");
    let wide_job = format!(
        "{{\"op\":\"submit_batch\",\"jobs\":[{{\"design\":\"{design}\",\
         \"property\":{{\"monitor\":\"q\"}}}}]}}"
    );
    assert_eq!(client.call_err(&wide_job), "bad_property");

    let batch = client.submit_both(&design);
    // poll until done, then fetch results both ways.
    loop {
        let reply = client.call(Json::obj(vec![
            ("op", Json::str("poll")),
            ("batch", Json::num(batch)),
        ]));
        if reply.get("done").and_then(Json::as_bool) == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let results = client.wait(batch);
    assert_eq!(results.len(), 2);
    assert_eq!(label_of(&results[0]), "holds(bound)");
    assert_eq!(label_of(&results[1]), "violated");
    assert!(results[1]
        .get("verdict")
        .and_then(|v| v.get("trace_cycles"))
        .and_then(Json::as_u64)
        .is_some());

    // A second identical submission is answered from the verdict cache.
    let batch = client.submit_both(&design);
    let warm = client.wait(batch);
    assert!(warm.iter().all(cached), "{warm:?}");

    // Two clients at once multiplex onto the same service.
    let mut second = Client::connect(addr);
    let design2 = second.register_counter();
    assert_eq!(design, design2, "same structure, same design");
    let stats = second.call(Json::obj(vec![("op", Json::str("stats"))]));
    let designs = stats
        .get("stats")
        .and_then(|s| s.get("designs"))
        .and_then(Json::as_u64);
    assert_eq!(designs, Some(1));

    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn restart_warm_serves_persisted_verdicts() {
    let dir = TempDir::new();

    // Session 1: cold run, then graceful shutdown (drain + save).
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 0, "first boot is cold");
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let cold = client.wait(batch);
    assert!(cold.iter().all(|r| !cached(r)));
    let cold_labels: Vec<String> = cold.iter().map(label_of).collect();
    client.shutdown();
    handle.join().expect("server thread");
    let snapshots: Vec<_> = fs::read_dir(&dir.0)
        .expect("data dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        snapshots.len(),
        1,
        "one design, one snapshot: {snapshots:?}"
    );
    assert!(snapshots[0].ends_with(".wlacsnap"));

    // Session 2: a fresh process-equivalent (new Server, same data dir)
    // answers the same batch from the persisted verdict cache.
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 1, "snapshot reloaded at boot");
    let mut client = Client::connect(addr);
    // Note: re-registration is idempotent (the boot reload already brought
    // the design in) — clients do not need to know the server restarted.
    let design2 = client.register_counter();
    assert_eq!(design, design2);
    let batch = client.submit_both(&design2);
    let warm = client.wait(batch);
    assert!(
        warm.iter().all(cached),
        "restart-warm batch must hit the persisted cache: {warm:?}"
    );
    assert!(warm
        .iter()
        .all(|r| r.get("engines_spawned").and_then(Json::as_u64) == Some(0)));
    let warm_labels: Vec<String> = warm.iter().map(label_of).collect();
    assert_eq!(
        cold_labels, warm_labels,
        "verdicts identical across restart"
    );
    client.shutdown();
    handle.join().expect("server thread");

    // Session 3: a corrupted snapshot is skipped, not trusted — the boot is
    // cold but clean.
    let snap_path = dir.0.join(&snapshots[0]);
    let mut bytes = fs::read(&snap_path).expect("snapshot bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&snap_path, &bytes).expect("corrupt snapshot");
    let mut config = quick_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 0, "corrupt snapshot must be skipped");
    let mut client = Client::connect(addr);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn knowledge_export_import_over_the_wire() {
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit_both(&design);
    let _ = client.wait(batch);

    let reply = client.call(Json::obj(vec![
        ("op", Json::str("export_knowledge")),
        ("design", Json::str(design.clone())),
    ]));
    let hex = reply
        .get("snapshot")
        .and_then(Json::as_str)
        .expect("snapshot hex")
        .to_string();
    client.shutdown();
    handle.join().expect("server thread");

    // A second, completely unrelated server warm-starts from the exported
    // blob alone: import registers the design and fills its caches.
    let (addr, handle, _) = start(quick_config());
    let mut client = Client::connect(addr);
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("import_knowledge")),
        ("snapshot", Json::str(hex.clone())),
    ]));
    assert_eq!(
        reply.get("design").and_then(Json::as_str),
        Some(design.as_str())
    );
    assert_eq!(reply.get("verdicts").and_then(Json::as_u64), Some(2));
    let batch = client.submit_both(&design);
    let warm = client.wait(batch);
    assert!(warm.iter().all(cached), "{warm:?}");

    // Importing a truncated blob is rejected with a structured error.
    let truncated = &hex[..(hex.len() / 2) & !1];
    let line = format!("{{\"op\":\"import_knowledge\",\"snapshot\":\"{truncated}\"}}");
    assert_eq!(client.call_err(&line), "bad_snapshot");
    // Importing under the wrong design name is rejected too.
    let line = format!(
        "{{\"op\":\"import_knowledge\",\"design\":\"d0000000000000000\",\"snapshot\":\"{hex}\"}}"
    );
    assert_eq!(client.call_err(&line), "bad_snapshot");

    client.shutdown();
    handle.join().expect("server thread");
}
