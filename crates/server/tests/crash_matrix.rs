//! The crash matrix: every acknowledged result must survive every crash.
//!
//! Three layers of increasingly real process death:
//!
//! 1. **Truncation/bit-flip matrix** — a journal-mode server races a series
//!    of single-job batches while the test records, at every acknowledgement,
//!    the verdict bytes and the journal's on-disk length. The journal is then
//!    copied into fresh data directories and mutated — truncated at every
//!    record boundary, truncated at seeded random offsets, bit-flipped at
//!    seeded random offsets, damaged inside the header — and a fresh server
//!    boots from each mutation. Every query acknowledged at or before the
//!    surviving prefix must come back `from_cache` with **zero engine
//!    spawns** and **byte-identical** verdicts; every query past it re-runs
//!    and reaches the same verdict. No mutation may fail the boot.
//! 2. **Real kill** — a real `wlac-server` subprocess armed with the hidden
//!    `--crash-after-appends` flag hard-aborts in the middle of a journal
//!    append, leaving a genuinely torn frame. The restarted server quarantines
//!    the tear and replays the acknowledged prefix.
//! 3. **Kill during compaction** — every snapshot write is torn mid-frame
//!    (the kill-during-autosave model); compaction must then *keep* the
//!    journal, so nothing acknowledged is lost between a failed snapshot and
//!    its never-happening truncation.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use wlac_faultinject::{FaultPlan, FaultSite};
use wlac_persist::DurabilityMode;
use wlac_portfolio::Engine;
use wlac_rng::Rng64;
use wlac_server::{Json, Server, ServerConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-crash-matrix-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

const COUNTER_V: &str = r#"
    module counter(input clk, output ok, output bad);
      reg [7:0] q;
      always @(posedge clk) begin
        if (q == 10)
          q <= 10;
        else
          q <= q + 1;
      end
      assign ok = q < 11;
      assign bad = q < 5;
    endmodule
"#;

/// Four distinct single-job batches — four acknowledgements, four journal
/// records, four crash points between them.
const JOBS: [(&str, &str); 4] = [
    ("always", "ok"),
    ("always", "bad"),
    ("eventually", "bad"),
    ("eventually", "ok"),
];

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn try_raw(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("receive failed: {e}"))?;
        if reply.is_empty() {
            return Err("server closed the connection".into());
        }
        Json::parse(reply.trim_end()).map_err(|e| format!("bad reply: {e}"))
    }

    fn call(&mut self, request: Json) -> Json {
        let reply = self.try_raw(&request.to_string()).expect("exchange");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} failed: {reply}"
        );
        reply
    }

    fn register_counter(&mut self) -> String {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("register_design")),
            ("source", Json::str(COUNTER_V)),
        ]));
        reply
            .get("design")
            .and_then(Json::as_str)
            .expect("design hash")
            .to_string()
    }

    /// Submits one single-job batch and waits for its (sole) result.
    fn check_one(&mut self, design: &str, kind: &str, monitor: &str) -> Json {
        let job = Json::obj(vec![
            ("design", Json::str(design)),
            (
                "property",
                Json::obj(vec![
                    ("kind", Json::str(kind)),
                    ("monitor", Json::str(monitor)),
                ]),
            ),
        ]);
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("submit_batch")),
            ("jobs", Json::Arr(vec![job])),
        ]));
        let batch = reply.get("batch").and_then(Json::as_u64).expect("batch id");
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("wait")),
            ("batch", Json::num(batch)),
        ]));
        reply
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array")[0]
            .clone()
    }

    fn stats(&mut self) -> Json {
        let reply = self.call(Json::obj(vec![("op", Json::str("stats"))]));
        reply.get("stats").cloned().expect("stats object")
    }

    fn shutdown(&mut self) {
        self.call(Json::obj(vec![("op", Json::str("shutdown"))]));
    }
}

/// Deterministic single-engine, single-worker journal-mode config.
fn journal_config(data_dir: &TempDir) -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    config.data_dir = Some(data_dir.0.clone());
    config.service.workers = 1;
    config.service.predict = false;
    config.service.portfolio = config
        .service
        .portfolio
        .clone()
        .with_engines(vec![Engine::Atpg]);
    config.service.portfolio.checker.max_frames = 6;
    config.service.portfolio.checker.time_limit = Duration::from_secs(30);
    // The matrix wants the journal intact across the whole run: never compact.
    config.journal_compact_bytes = u64::MAX;
    // Exercise group commit (not strict mode) — the matrix models process
    // kills, where write-through appends survive without any fsync.
    config.journal_fsync_batch = 32;
    config
}

fn verdict_bytes(result: &Json) -> String {
    result.get("verdict").expect("verdict").to_string()
}

fn cached(result: &Json) -> bool {
    result.get("from_cache").and_then(Json::as_bool) == Some(true)
}

fn engines_spawned(result: &Json) -> u64 {
    result
        .get("engines_spawned")
        .and_then(Json::as_u64)
        .expect("engines_spawned")
}

/// The recording run: races [`JOBS`] one batch at a time and captures, at
/// each acknowledgement, the verdict bytes and the journal's byte length.
/// The server is *abandoned* (never shut down, so never compacted) — exactly
/// a crash, minus the kernel page cache loss no process kill causes anyway.
struct Recording {
    /// `boundaries[0]` is the header length; `boundaries[k]` the journal
    /// length at the k-th acknowledgement.
    boundaries: Vec<u64>,
    /// Reference verdict bytes per job, in [`JOBS`] order.
    reference: Vec<String>,
    /// Full journal bytes after the last acknowledgement.
    journal: Vec<u8>,
    /// The journal's file name (`d<hash>.wlacjournal`).
    file_name: String,
}

fn record_reference_run() -> Recording {
    let dir = TempDir::new();
    let server = Server::bind(journal_config(&dir)).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::spawn(move || server.run()); // leaked: abandoned, not drained
    let mut client = Client::connect(addr);
    let design = client.register_counter();

    let journal_path = |dir: &TempDir| {
        fs::read_dir(&dir.0)
            .expect("data dir")
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().and_then(|x| x.to_str()) == Some("wlacjournal"))
    };

    let mut boundaries = Vec::new();
    let mut reference = Vec::new();
    for (kind, monitor) in JOBS {
        let result = client.check_one(&design, kind, monitor);
        assert!(!cached(&result), "recording run must race every job");
        reference.push(verdict_bytes(&result));
        let path = journal_path(&dir).expect("journal exists after first ack");
        boundaries.push(fs::metadata(&path).expect("metadata").len());
    }
    let path = journal_path(&dir).expect("journal");
    let journal = fs::read(&path).expect("journal bytes");
    assert_eq!(journal.len() as u64, boundaries[JOBS.len() - 1]);
    let file_name = path
        .file_name()
        .expect("file name")
        .to_string_lossy()
        .into_owned();

    let replay = wlac_persist::recover_journal(&journal[..]).expect("clean journal recovers");
    assert_eq!(replay.records.len(), JOBS.len(), "one record per ack");

    let mut all = vec![header_boundary(&journal)];
    all.extend(boundaries);
    Recording {
        boundaries: all,
        reference,
        journal,
        file_name,
    }
}

/// Length of the journal's header (the boundary before the first record):
/// the longest prefix that still recovers to zero records.
fn header_boundary(journal: &[u8]) -> u64 {
    // The header parses from the full bytes; recovering a prefix that holds
    // only the header yields valid_bytes == header length. Find it by
    // recovering the shortest prefix that parses at all.
    for len in 0..=journal.len() {
        if let Ok(replay) = wlac_persist::recover_journal(&journal[..len]) {
            assert_eq!(replay.records.len(), 0);
            return replay.valid_bytes;
        }
    }
    panic!("journal has no valid header");
}

/// Boots a fresh journal-mode server from `journal_bytes` planted as the
/// only file in a fresh data directory, then checks every job: the first
/// `expected_recovered` jobs must be answered from recovered state with zero
/// engine spawns and byte-identical verdicts; the rest must re-race and
/// reach the same verdicts. The boot itself must always succeed.
fn assert_recovery(
    case: &str,
    recording: &Recording,
    journal_bytes: &[u8],
    expected_recovered: usize,
) {
    let dir = TempDir::new();
    fs::write(dir.0.join(&recording.file_name), journal_bytes).expect("plant journal");
    let server = Server::bind(journal_config(&dir)).expect("boot must survive any journal damage");
    assert_eq!(server.loaded_snapshots(), 0, "{case}: no snapshots planted");
    assert_eq!(
        server.boot_replayed_records(),
        expected_recovered as u64,
        "{case}: replayed record count"
    );
    // Damage is never silent: quarantined bytes come with a parseable
    // post-mortem bundle naming the fault site — and a clean boot must not
    // cry wolf.
    let dumps: Vec<std::path::PathBuf> = fs::read_dir(dir.0.join("postmortem"))
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("pm-") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    if server.journal_quarantined_bytes() > 0 {
        assert!(
            !dumps.is_empty(),
            "{case}: quarantined bytes without a post-mortem dump"
        );
        for dump in &dumps {
            let text = fs::read_to_string(dump).expect("dump is readable");
            let bundle = Json::parse(&text)
                .unwrap_or_else(|e| panic!("{case}: dump {} is not JSON: {e}", dump.display()));
            assert_eq!(
                bundle.get("fault").and_then(Json::as_str),
                Some("journal_tail_quarantined"),
                "{case}: {bundle}"
            );
        }
    } else {
        assert!(
            dumps.is_empty(),
            "{case}: undamaged journal produced dumps: {dumps:?}"
        );
    }
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    for (index, (kind, monitor)) in JOBS.iter().enumerate() {
        let result = client.check_one(&design, kind, monitor);
        assert_eq!(
            verdict_bytes(&result),
            recording.reference[index],
            "{case}: job {index} verdict must be byte-identical"
        );
        if index < expected_recovered {
            assert!(
                cached(&result),
                "{case}: acknowledged job {index} must be answered from recovered state: {result}"
            );
            assert_eq!(
                engines_spawned(&result),
                0,
                "{case}: acknowledged job {index} must spawn no engines"
            );
        } else {
            assert!(
                !cached(&result),
                "{case}: job {index} was never acknowledged, must re-race"
            );
        }
    }
    client.shutdown();
    handle.join().expect("server thread");
}

/// How many whole acknowledged records survive when the journal is cut (or
/// first damaged) at byte offset `at`.
fn recovered_at(boundaries: &[u64], at: u64) -> usize {
    boundaries.iter().skip(1).filter(|b| **b <= at).count()
}

#[test]
fn crash_matrix_truncation_and_bit_flips() {
    let recording = record_reference_run();
    let boundaries = &recording.boundaries;
    let full = recording.journal.len() as u64;
    assert_eq!(*boundaries.last().expect("boundaries"), full);

    // Crash at every record boundary: the canonical kill-between-appends.
    for (k, boundary) in boundaries.iter().enumerate() {
        let cut = &recording.journal[..*boundary as usize];
        assert_recovery(&format!("boundary {k}"), &recording, cut, k);
    }

    // Crash at seeded random offsets: kills mid-append. The surviving state
    // is exactly the records whose frames end at or before the cut.
    let mut rng = Rng64::seed_from_u64(0xCAFE_D00D);
    for round in 0..6 {
        let at = rng.next_range(boundaries[0], full);
        let cut = &recording.journal[..at as usize];
        assert_recovery(
            &format!("random cut {round} @ {at}"),
            &recording,
            cut,
            recovered_at(boundaries, at),
        );
    }

    // Bit rot inside the record region: the damaged frame and everything
    // after it quarantine; everything before it survives.
    for round in 0..6 {
        let at = rng.next_range(boundaries[0], full);
        let mut damaged = recording.journal.clone();
        damaged[at as usize] ^= 1 << rng.next_below(8);
        assert_recovery(
            &format!("bit flip {round} @ {at}"),
            &recording,
            &damaged,
            recovered_at(boundaries, at),
        );
    }

    // Damage inside the header: the whole journal is untrusted — the server
    // boots cold (never crashes) and re-races everything.
    let mut damaged = recording.journal.clone();
    damaged[(boundaries[0] / 2) as usize] ^= 0x20;
    assert_recovery("header damage", &recording, &damaged, 0);
}

/// Phase 2: a real subprocess, really killed mid-append.
#[test]
fn crash_matrix_real_kill_mid_append() {
    let exe = env!("CARGO_BIN_EXE_wlac-server");
    let dir = TempDir::new();
    let data_dir = dir.0.to_string_lossy().into_owned();

    type Stdout = std::io::Lines<BufReader<std::process::ChildStdout>>;
    // The returned stdout reader must stay alive until the child exits: the
    // server prints a farewell line at shutdown, and a closed pipe would
    // turn that into a broken-pipe failure.
    let spawn = |crash: Option<u64>| -> (Child, std::net::SocketAddr, Stdout) {
        let mut cmd = Command::new(exe);
        cmd.args([
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            &data_dir,
            "--workers",
            "1",
            "--max-frames",
            "6",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        if let Some(n) = crash {
            cmd.args(["--crash-after-appends", &n.to_string()]);
        }
        let mut child = cmd.spawn().expect("spawn wlac-server");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = lines
            .next()
            .expect("server prints its address")
            .expect("readable stdout");
        let addr = line
            .strip_prefix("listening on ")
            .expect("listening line")
            .parse()
            .expect("socket address");
        (child, addr, lines)
    };

    // Session 1: the second journal append hard-aborts the process between
    // the two halves of the frame — a genuinely torn tail on a real file.
    let (mut child, addr, _stdout) = spawn(Some(2));
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let first = client.check_one(&design, JOBS[0].0, JOBS[0].1);
    assert!(!cached(&first));
    let first_bytes = verdict_bytes(&first);
    // The second check dies with the server: the ack must never arrive.
    let job = format!(
        "{{\"op\":\"submit_batch\",\"jobs\":[{{\"design\":\"{design}\",\
         \"property\":{{\"kind\":\"{}\",\"monitor\":\"{}\"}}}}]}}",
        JOBS[1].0, JOBS[1].1
    );
    // Either the submit/wait exchange errors out or a reply shows up before
    // the worker reaches the append; in both cases the process dies.
    if let Ok(reply) = client.try_raw(&job) {
        if let Some(batch) = reply.get("batch").and_then(Json::as_u64) {
            let _ = client.try_raw(&format!("{{\"op\":\"wait\",\"batch\":{batch}}}"));
        }
    }
    let status = child.wait().expect("child exit");
    assert!(!status.success(), "the armed server must die by abort");
    let journal = fs::read_dir(&dir.0)
        .expect("data dir")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|x| x.to_str()) == Some("wlacjournal"))
        .expect("journal survives the abort");
    let torn_len = fs::metadata(&journal).expect("metadata").len();

    // Session 2: restart over the torn journal. The acknowledged first
    // check replays; the torn second append quarantines.
    let (mut child, addr, _stdout) = spawn(None);
    let mut client = Client::connect(addr);
    let stats = client.stats();
    assert_eq!(
        stats.get("boot_replayed_records").and_then(Json::as_u64),
        Some(1),
        "exactly the acknowledged record replays: {stats}"
    );
    assert!(
        stats
            .get("journal_quarantined_bytes")
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "the torn half-frame is quarantined: {stats}"
    );
    let design = client.register_counter();
    let replayed = client.check_one(&design, JOBS[0].0, JOBS[0].1);
    assert!(cached(&replayed), "acknowledged work survives the kill");
    assert_eq!(engines_spawned(&replayed), 0);
    assert_eq!(
        verdict_bytes(&replayed),
        first_bytes,
        "byte-identical verdict"
    );
    // The never-acknowledged second check re-races to completion.
    let rerun = client.check_one(&design, JOBS[1].0, JOBS[1].1);
    assert!(!cached(&rerun));
    client.shutdown();
    let status = child.wait().expect("child exit");
    assert!(status.success(), "graceful shutdown");
    let _ = torn_len;
}

/// Phase 3: a crash in the middle of *compaction* — the snapshot write is
/// torn, so the truncation must never happen and the journal keeps carrying
/// every acknowledged record.
#[test]
fn crash_matrix_kill_during_compaction_keeps_the_journal() {
    let dir = TempDir::new();
    let mut config = journal_config(&dir);
    // Compact after every answered batch, and tear every snapshot write.
    config.journal_compact_bytes = 1;
    config.faults = FaultPlan::seeded(7).fire_from(FaultSite::SnapshotTorn, 1);
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let mut reference = Vec::new();
    for (kind, monitor) in &JOBS[..2] {
        reference.push(verdict_bytes(&client.check_one(&design, kind, monitor)));
    }
    // Graceful shutdown also tries (and fails) to compact.
    client.shutdown();
    handle.join().expect("server thread");

    // No snapshot was ever published; the journal still holds both records.
    let snapshots = fs::read_dir(&dir.0)
        .expect("data dir")
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("wlacsnap"))
        .count();
    assert_eq!(snapshots, 0, "every snapshot write was torn");

    // Restart: both acknowledged checks replay from the kept journal.
    let mut config = journal_config(&dir);
    config.journal_compact_bytes = 1; // compaction works again (no faults)
    let server = Server::bind(config).expect("bind");
    assert_eq!(server.boot_replayed_records(), 2);
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    for (index, (kind, monitor)) in JOBS[..2].iter().enumerate() {
        let result = client.check_one(&design, kind, monitor);
        assert!(cached(&result), "acknowledged job {index}: {result}");
        assert_eq!(engines_spawned(&result), 0);
        assert_eq!(verdict_bytes(&result), reference[index]);
    }
    client.shutdown();
    handle.join().expect("server thread");
}

/// A `--durability snapshot` server still replays a boot-leftover journal (a
/// mode change must not forfeit acknowledged state) — and once a snapshot
/// holds that state, the journal is removed instead of being replayed at
/// every boot forever.
#[test]
fn snapshot_mode_absorbs_and_removes_leftover_journals() {
    let recording = record_reference_run();
    let dir = TempDir::new();
    let journal_path = dir.0.join(&recording.file_name);
    fs::write(&journal_path, &recording.journal).expect("plant journal");

    let mut config = journal_config(&dir);
    config.durability = DurabilityMode::Snapshot;
    let server = Server::bind(config).expect("bind");
    assert_eq!(server.loaded_snapshots(), 0);
    assert_eq!(server.boot_replayed_records(), JOBS.len() as u64);
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    for (index, (kind, monitor)) in JOBS.iter().enumerate() {
        let result = client.check_one(&design, kind, monitor);
        assert!(cached(&result), "replayed job {index}: {result}");
        assert_eq!(verdict_bytes(&result), recording.reference[index]);
    }
    // Shutdown saves a snapshot of every design; with that on disk the
    // journal is redundant and must be gone.
    client.shutdown();
    handle.join().expect("server thread");
    assert!(
        !journal_path.exists(),
        "a snapshotted journal must not be replayed forever"
    );

    // Next boot: warm purely from the snapshot, nothing left to replay.
    let mut config = journal_config(&dir);
    config.durability = DurabilityMode::Snapshot;
    let server = Server::bind(config).expect("bind");
    assert_eq!(server.loaded_snapshots(), 1);
    assert_eq!(server.boot_replayed_records(), 0);
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    for (index, (kind, monitor)) in JOBS.iter().enumerate() {
        let result = client.check_one(&design, kind, monitor);
        assert!(cached(&result), "snapshot-restored job {index}: {result}");
        assert_eq!(verdict_bytes(&result), recording.reference[index]);
    }
    client.shutdown();
    handle.join().expect("server thread");
}
