//! Deterministic fault-injection ("chaos") suite: a real server on a real
//! socket with a seeded [`FaultPlan`] arming engine hangs, worker panics,
//! autosave I/O failures and torn snapshot writes — asserting the stack
//! degrades exactly as designed and that surviving verdicts are
//! byte-identical to a fault-free run.
//!
//! Determinism: every faulted service runs `workers = 1` and a single-engine
//! portfolio where verdict bytes are compared, so job order, fault arrival
//! order and verdict content are all reproducible.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use wlac_faultinject::{FaultPlan, FaultSite};
use wlac_persist::DurabilityMode;
use wlac_portfolio::Engine;
use wlac_server::{Json, Server, ServerConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "wlac-chaos-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// Same saturating counter the e2e suite uses: `ok` holds, `bad` is violated
/// around cycle 5.
const COUNTER_V: &str = r#"
    module counter(input clk, output ok, output bad);
      reg [7:0] q;
      always @(posedge clk) begin
        if (q == 10)
          q <= 10;
        else
          q <= q + 1;
      end
      assign ok = q < 11;
      assign bad = q < 5;
    endmodule
"#;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// Sends one frame and reads one reply line; `Err` when the connection
    /// died mid-exchange (expected under some faults).
    fn try_raw(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("receive failed: {e}"))?;
        if reply.is_empty() {
            return Err("server closed the connection".into());
        }
        Json::parse(reply.trim_end()).map_err(|e| format!("bad reply: {e}"))
    }

    fn call(&mut self, request: Json) -> Json {
        let reply = self.try_raw(&request.to_string()).expect("exchange");
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {request} failed: {reply}"
        );
        reply
    }

    /// Reads one unsolicited line (the overload shed arrives before any
    /// request is sent).
    fn read_line(&mut self) -> Json {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("receive");
        assert!(!reply.is_empty(), "server closed without a reply");
        Json::parse(reply.trim_end()).expect("reply is valid JSON")
    }

    fn register_counter(&mut self) -> String {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("register_design")),
            ("source", Json::str(COUNTER_V)),
        ]));
        reply
            .get("design")
            .and_then(Json::as_str)
            .expect("design hash")
            .to_string()
    }

    /// Submits jobs as `(kind, monitor)` pairs and returns the batch id.
    fn submit(&mut self, design: &str, jobs: &[(&str, &str)]) -> u64 {
        let job_values = jobs
            .iter()
            .map(|(kind, monitor)| {
                Json::obj(vec![
                    ("design", Json::str(design)),
                    (
                        "property",
                        Json::obj(vec![
                            ("kind", Json::str(*kind)),
                            ("monitor", Json::str(*monitor)),
                        ]),
                    ),
                ])
            })
            .collect();
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("submit_batch")),
            ("jobs", Json::Arr(job_values)),
        ]));
        reply.get("batch").and_then(Json::as_u64).expect("batch id")
    }

    fn wait(&mut self, batch: u64) -> Vec<Json> {
        let reply = self.call(Json::obj(vec![
            ("op", Json::str("wait")),
            ("batch", Json::num(batch)),
        ]));
        reply
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array")
            .to_vec()
    }

    fn stats(&mut self) -> Json {
        let reply = self.call(Json::obj(vec![("op", Json::str("stats"))]));
        reply.get("stats").cloned().expect("stats object")
    }

    fn metric(&mut self, name: &str) -> u64 {
        let reply = self.call(Json::obj(vec![("op", Json::str("metrics"))]));
        reply
            .get("metrics")
            .and_then(|m| m.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    }

    fn shutdown(&mut self) -> Json {
        self.call(Json::obj(vec![("op", Json::str("shutdown"))]))
    }
}

/// A deterministic single-engine, single-worker config: job order is submit
/// order and verdict bytes are reproducible run to run.
fn deterministic_config() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    config.service.workers = 1;
    // The predictor may widen the engine set; determinism wants exactly the
    // configured engines.
    config.service.predict = false;
    config.service.portfolio = config
        .service
        .portfolio
        .clone()
        .with_engines(vec![Engine::Atpg]);
    config.service.portfolio.checker.max_frames = 6;
    config.service.portfolio.checker.time_limit = Duration::from_secs(30);
    config
}

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>, usize) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let loaded = server.loaded_snapshots();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle, loaded)
}

/// The verdict object alone — label plus its payload (frames, trace length),
/// no wall-clock or engine-attribution noise — rendered to bytes.
fn verdict_bytes(result: &Json) -> String {
    result.get("verdict").expect("verdict").to_string()
}

fn label_of(result: &Json) -> String {
    result
        .get("verdict")
        .and_then(|v| v.get("label"))
        .and_then(Json::as_str)
        .expect("verdict label")
        .to_string()
}

/// Runs the three-job batch fault-free and returns its verdict bytes — the
/// reference the faulted runs are compared against.
fn fault_free_verdicts(jobs: &[(&str, &str)]) -> Vec<String> {
    let (addr, handle, _) = start(deterministic_config());
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, jobs);
    let results = client.wait(batch);
    let verdicts = results.iter().map(verdict_bytes).collect();
    client.shutdown();
    handle.join().expect("server thread");
    verdicts
}

const THREE_JOBS: [(&str, &str); 3] = [("always", "ok"), ("always", "bad"), ("eventually", "bad")];

#[test]
fn deadline_turns_a_hung_engine_into_a_timeout_and_frees_the_worker() {
    let budget = Duration::from_millis(400);
    let mut config = deterministic_config();
    config.service.job_budget = Some(budget);
    // Every engine run hangs until its cancel token releases it — only the
    // job-budget deadline can produce an answer.
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::EngineHang, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();

    let started = Instant::now();
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    let elapsed = started.elapsed();
    assert_eq!(results.len(), 1);
    assert_eq!(label_of(&results[0]), "timeout");
    assert_eq!(
        results[0]
            .get("verdict")
            .and_then(|v| v.get("budget_ms"))
            .and_then(Json::as_u64),
        Some(budget.as_millis() as u64)
    );
    // The acceptance bar: an over-budget job frees its worker within twice
    // the budget (measured end to end over the socket, so includes queueing
    // and the reply round-trip).
    assert!(
        elapsed < budget * 2,
        "timeout took {elapsed:?}, budget {budget:?}"
    );

    // The (sole) worker is genuinely free: a second batch gets an answer too.
    let batch = client.submit(&design, &[("always", "bad")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "timeout");

    let stats = client.stats();
    assert_eq!(
        stats.get("timed_out_jobs").and_then(Json::as_u64),
        Some(2),
        "{stats}"
    );
    assert!(client.metric("service_jobs_timed_out_total") >= 2);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn worker_panic_quarantines_only_the_faulted_job() {
    let reference = fault_free_verdicts(&THREE_JOBS);

    let mut config = deterministic_config();
    // The second job the (single) worker picks up panics mid-processing.
    config.service.faults = FaultPlan::seeded(7).fire_nth(FaultSite::WorkerPanic, 2);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &THREE_JOBS);
    let results = client.wait(batch);
    assert_eq!(results.len(), 3);

    // Job 2 (0-based index 1) is quarantined with a structured error verdict;
    // the jobs before and after it are byte-identical to the fault-free run.
    assert_eq!(label_of(&results[1]), "unknown");
    assert!(
        verdict_bytes(&results[1]).contains("quarantined"),
        "{}",
        verdict_bytes(&results[1])
    );
    assert_eq!(verdict_bytes(&results[0]), reference[0]);
    assert_eq!(verdict_bytes(&results[2]), reference[2]);

    let stats = client.stats();
    assert_eq!(
        stats.get("quarantined_jobs").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        stats.get("workers_respawned").and_then(Json::as_u64),
        Some(0),
        "the per-job fence holds, so the worker itself survives: {stats}"
    );
    assert!(client.metric("service_jobs_quarantined_total") >= 1);

    // The same (fenced) worker serves new work.
    let batch = client.submit(&design, &[("eventually", "ok")]);
    let results = client.wait(batch);
    assert_eq!(results.len(), 1);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn a_lost_worker_is_respawned_and_the_pool_keeps_serving() {
    let mut config = deterministic_config();
    // A panic that escapes the per-job fence (fires after the job completed,
    // outside the fence) kills the worker thread itself — the supervision
    // sentinel must replace it.
    config.service.faults = FaultPlan::seeded(7).fire_nth(FaultSite::WorkerLoss, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    assert_eq!(results.len(), 1);
    assert_eq!(label_of(&results[0]), "holds(bound)");

    // The sole worker died after that job; without a respawn this second
    // batch would hang forever.
    let batch = client.submit(&design, &[("always", "bad")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "violated");
    let stats = client.stats();
    assert_eq!(
        stats.get("workers_respawned").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        stats.get("quarantined_jobs").and_then(Json::as_u64),
        Some(0)
    );
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn portfolio_masks_a_hung_engine() {
    // Full engine set, ATPG hangs forever: a sibling engine answers, the race
    // cancels the hung loser, and the verdicts match the fault-free labels.
    let mut config = deterministic_config();
    config.service.portfolio = config.service.portfolio.clone().with_engines(vec![
        Engine::Atpg,
        Engine::SatBmc,
        Engine::RandomSim,
    ]);
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::EngineHang, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok"), ("always", "bad")]);
    let results = client.wait(batch);
    assert_eq!(results.len(), 2);
    assert_eq!(label_of(&results[0]), "holds(bound)");
    assert_eq!(label_of(&results[1]), "violated");
    assert_ne!(
        results[0].get("winner").and_then(Json::as_str),
        Some("atpg"),
        "the hung engine cannot win: {}",
        results[0]
    );
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn autosave_write_failure_degrades_durability_not_service() {
    let dir = TempDir::new();
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    // Snapshot mode: this test is about the per-batch autosave path, which
    // journal mode deliberately replaces with threshold-driven compaction.
    config.durability = DurabilityMode::Snapshot;
    // Every snapshot write fails before touching the file system.
    config.faults = FaultPlan::seeded(7).fire_from(FaultSite::SnapshotWrite, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "holds(bound)");

    // The autosave failed (counted) but the server keeps answering, and the
    // data directory holds no snapshot at all.
    assert!(client.metric("server_autosave_failures_total") >= 1);
    assert_eq!(client.metric("server_autosaves_total"), 0);
    let snapshots = fs::read_dir(&dir.0)
        .expect("data dir")
        .filter(|e| {
            e.as_ref()
                .expect("entry")
                .path()
                .extension()
                .is_some_and(|x| x == "wlacsnap")
        })
        .count();
    assert_eq!(snapshots, 0, "failed writes must not publish snapshots");
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "holds(bound)");
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn kill_during_autosave_leaves_a_recoverable_store() {
    let dir = TempDir::new();

    // Session 1: clean run, graceful shutdown — a good snapshot on disk.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &THREE_JOBS);
    let reference: Vec<String> = client.wait(batch).iter().map(verdict_bytes).collect();
    client.shutdown();
    handle.join().expect("server thread");
    let snapshot_name = fs::read_dir(&dir.0)
        .expect("data dir")
        .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
        .find(|name| name.ends_with(".wlacsnap"))
        .expect("session 1 published a snapshot");
    let good_bytes = fs::read(dir.0.join(&snapshot_name)).expect("snapshot bytes");

    // Session 2: every save is torn mid-write — the process-kill-during-
    // autosave scenario. The published snapshot must survive untouched, with
    // only temp-file debris added.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.faults = FaultPlan::seeded(7).fire_from(FaultSite::SnapshotTorn, 1);
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 1, "session 2 boots warm from session 1");
    let mut client = Client::connect(addr);
    client.register_counter();
    client.shutdown(); // the shutdown autosave is the torn write
    handle.join().expect("server thread");
    assert_eq!(
        fs::read(dir.0.join(&snapshot_name)).expect("snapshot bytes"),
        good_bytes,
        "a torn write must never reach the published snapshot"
    );
    let debris = fs::read_dir(&dir.0)
        .expect("data dir")
        .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
        .filter(|name| name.starts_with('.') && name.contains(".wlacsnap.tmp"))
        .count();
    assert!(debris >= 1, "the torn write leaves its temp file behind");

    // Session 3: boot sweeps the debris, loads the last-good snapshot, and
    // answers the original batch entirely from the persisted cache.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, loaded) = start(config);
    assert_eq!(loaded, 1, "recovery boot is warm");
    let swept = fs::read_dir(&dir.0)
        .expect("data dir")
        .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
        .filter(|name| name.starts_with('.') && name.contains(".wlacsnap.tmp"))
        .count();
    assert_eq!(swept, 0, "boot removes torn temp files");
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &THREE_JOBS);
    let warm = client.wait(batch);
    assert!(
        warm.iter().all(|r| {
            r.get("from_cache").and_then(Json::as_bool) == Some(true)
                && r.get("engines_spawned").and_then(Json::as_u64) == Some(0)
        }),
        "recovered boot answers from the persisted cache: {warm:?}"
    );
    let recovered: Vec<String> = warm.iter().map(verdict_bytes).collect();
    assert_eq!(recovered, reference, "verdicts identical across the fault");
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn overload_shed_carries_a_retry_hint_and_recovers() {
    let mut config = deterministic_config();
    config.max_connections = 1;
    let (addr, handle, _) = start(config);

    // First client occupies the only slot (a completed request proves its
    // handler is running and counted).
    let mut first = Client::connect(addr);
    first.call(Json::obj(vec![("op", Json::str("ping"))]));

    // Second client is shed immediately with a structured overload reply.
    let mut second = Client::connect(addr);
    let shed = second.read_line();
    assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
    let error = shed.get("error").expect("error object");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("overloaded"),
        "{shed}"
    );
    assert!(
        error
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .is_some_and(|ms| ms > 0),
        "shed reply carries a back-off hint: {shed}"
    );

    // Once the first client leaves, the slot frees and new connections serve.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut recovered = loop {
        let mut client = Client::connect(addr);
        let reply = client
            .try_raw("{\"op\":\"ping\"}")
            .unwrap_or_else(|_| Json::obj(vec![("ok", Json::Bool(false))]));
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            break client;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after the holder disconnected"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    recovered.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn server_side_wait_is_bounded() {
    let mut config = deterministic_config();
    config.wait_timeout = Duration::from_millis(300);
    config.drain_timeout = Duration::from_millis(300);
    // No job budget: the hung engine stays hung, only the wait bound saves
    // the connection.
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::EngineHang, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);

    let started = Instant::now();
    let reply = client
        .try_raw(&format!("{{\"op\":\"wait\",\"batch\":{batch}}}"))
        .expect("exchange");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("timeout"),
        "{reply}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "wait returned promptly"
    );

    // A client-requested slice below the server bound is honoured too.
    let reply = client
        .try_raw(&format!(
            "{{\"op\":\"wait\",\"batch\":{batch},\"timeout_ms\":50}}"
        ))
        .expect("exchange");
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("timeout")
    );

    // Shutdown cannot drain the wedged job; it reports that instead of
    // hanging forever.
    let reply = client.shutdown();
    assert_eq!(reply.get("drained").and_then(Json::as_bool), Some(false));
    handle.join().expect("server thread");
}

/// The parsed post-mortem bundles under `<data_dir>/postmortem`, in write
/// order. Parsing is part of the assertion: every bundle a fault path
/// produces must be valid JSON (torn or unparseable dumps defeat the
/// point of a post-mortem).
fn postmortem_bundles(data_dir: &std::path::Path) -> Vec<(String, Json)> {
    let dir = data_dir.join("postmortem");
    let Ok(entries) = fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut bundles: Vec<(String, Json)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            if !name.starts_with("pm-") || !name.ends_with(".json") {
                return None;
            }
            let text = fs::read_to_string(e.path()).expect("bundle is readable");
            let bundle = Json::parse(&text)
                .unwrap_or_else(|e| panic!("bundle {name} is not valid JSON: {e}"));
            Some((name, bundle))
        })
        .collect();
    bundles.sort_by(|a, b| a.0.cmp(&b.0));
    bundles
}

/// The bundles whose `fault` member names the given fault path.
fn bundles_for<'a>(bundles: &'a [(String, Json)], fault: &str) -> Vec<&'a Json> {
    bundles
        .iter()
        .filter(|(name, bundle)| {
            assert_eq!(
                bundle.get("fault").and_then(Json::as_str),
                name.get(10..name.len() - 5),
                "file name carries the fault: {name}"
            );
            bundle.get("fault").and_then(Json::as_str) == Some(fault)
        })
        .map(|(_, bundle)| bundle)
        .collect()
}

#[test]
fn a_quarantined_job_writes_a_parseable_postmortem_bundle() {
    let dir = TempDir::new();
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.service.faults = FaultPlan::seeded(7).fire_nth(FaultSite::WorkerPanic, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "unknown");

    // The quarantine dumped before the job completed, so the bundle is
    // already on disk when the wait returns.
    let bundles = postmortem_bundles(&dir.0);
    let quarantined = bundles_for(&bundles, "job_quarantined");
    assert_eq!(quarantined.len(), 1, "bundles: {bundles:?}");
    let bundle = quarantined[0];
    assert!(
        bundle
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("panic")),
        "{bundle}"
    );
    let descriptor = bundle.get("job_descriptor").expect("job descriptor");
    assert_eq!(descriptor.get("index").and_then(Json::as_u64), Some(0));
    assert_eq!(
        descriptor.get("property").and_then(Json::as_str),
        Some("ok")
    );
    assert!(
        bundle.get("job").and_then(Json::as_u64).unwrap_or(0) > 0,
        "the bundle is job-scoped: {bundle}"
    );
    // The flight-recorder snapshot rode along, and the faulting job's own
    // events (its dequeue at least) are extracted under `job_events`.
    let events = bundle
        .get("flight_recorder")
        .and_then(|fr| fr.get("events"))
        .and_then(Json::as_arr)
        .expect("recorder events");
    assert!(!events.is_empty(), "recorder captured boot/job events");
    let job_events = bundle
        .get("job_events")
        .and_then(Json::as_arr)
        .expect("job events");
    assert!(
        job_events
            .iter()
            .any(|e| e.get("kind").and_then(Json::as_str) == Some("dequeue")),
        "job trail includes its dequeue: {job_events:?}"
    );
    // The full metrics snapshot is embedded as a real object.
    assert!(
        bundle
            .get("metrics")
            .and_then(|m| m.get("service_jobs_submitted_total"))
            .is_some(),
        "{bundle}"
    );
    assert!(client.metric("server_postmortems_written_total") >= 1);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn a_timed_out_job_writes_a_postmortem_naming_the_budget() {
    let dir = TempDir::new();
    let budget = Duration::from_millis(300);
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.service.job_budget = Some(budget);
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::EngineHang, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);
    let results = client.wait(batch);
    assert_eq!(label_of(&results[0]), "timeout");

    let bundles = postmortem_bundles(&dir.0);
    let timeouts = bundles_for(&bundles, "job_timeout");
    assert_eq!(timeouts.len(), 1, "bundles: {bundles:?}");
    let bundle = timeouts[0];
    assert!(
        bundle
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("budget")),
        "{bundle}"
    );
    assert_eq!(
        bundle
            .get("job_descriptor")
            .and_then(|d| d.get("property"))
            .and_then(Json::as_str),
        Some("ok")
    );
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn autosave_failure_and_rejected_snapshot_write_postmortems() {
    let dir = TempDir::new();

    // Session 1: every snapshot write fails — the autosave fault path dumps.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.durability = DurabilityMode::Snapshot;
    config.faults = FaultPlan::seeded(7).fire_from(FaultSite::SnapshotWrite, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok")]);
    client.wait(batch);
    let bundles = postmortem_bundles(&dir.0);
    let autosaves = bundles_for(&bundles, "autosave_failure");
    assert!(!autosaves.is_empty(), "bundles: {bundles:?}");
    assert!(
        autosaves[0]
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("autosave")),
        "{}",
        autosaves[0]
    );
    // While the failure is fresh, health reports degraded durability.
    let reply = client.call(Json::obj(vec![("op", Json::str("health"))]));
    assert_eq!(
        reply.get("degraded").and_then(Json::as_bool),
        Some(true),
        "{reply}"
    );
    assert_eq!(
        reply
            .get("checks")
            .and_then(|c| c.get("durability"))
            .and_then(|d| d.get("ok"))
            .and_then(Json::as_bool),
        Some(false),
        "{reply}"
    );
    client.shutdown();
    handle.join().expect("server thread");

    // Session 2: a garbage snapshot file in the data directory is rejected
    // at boot — and the rejection dumps a bundle naming the file.
    fs::write(dir.0.join("dfff0000deadbeef.wlacsnap"), b"not a snapshot").expect("write garbage");
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    let (addr, handle, _) = start(config);
    let bundles = postmortem_bundles(&dir.0);
    let rejected = bundles_for(&bundles, "snapshot_rejected");
    assert_eq!(rejected.len(), 1, "bundles: {bundles:?}");
    assert!(
        rejected[0]
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains(".wlacsnap")),
        "{}",
        rejected[0]
    );
    let mut client = Client::connect(addr);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn a_torn_journal_tail_writes_a_postmortem_at_boot() {
    let dir = TempDir::new();

    // Session 1: journal mode, real records on disk.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.durability = DurabilityMode::Journal;
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &THREE_JOBS);
    client.wait(batch);
    client.shutdown();
    handle.join().expect("server thread");

    // Graceful shutdown compacts the journal back to its (valid) header.
    // Tear the tail: append garbage past the last valid byte.
    let path = fs::read_dir(&dir.0)
        .expect("data dir")
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("wlacjournal"))
        .expect("journal exists");
    let mut bytes = fs::read(&path).expect("journal bytes");
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03]);
    fs::write(&path, &bytes).expect("tear journal tail");

    // Session 2: boot quarantines the torn tail and dumps a bundle.
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.durability = DurabilityMode::Journal;
    let (addr, handle, _) = start(config);
    let bundles = postmortem_bundles(&dir.0);
    let torn = bundles_for(&bundles, "journal_tail_quarantined");
    assert_eq!(torn.len(), 1, "bundles: {bundles:?}");
    let bundle = torn[0];
    assert!(
        bundle
            .get("quarantined_bytes")
            .and_then(Json::as_u64)
            .is_some_and(|b| b > 0),
        "{bundle}"
    );
    let mut client = Client::connect(addr);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn postmortem_bundles_are_evicted_oldest_first_under_the_count_cap() {
    let dir = TempDir::new();
    let mut config = deterministic_config();
    config.data_dir = Some(dir.0.clone());
    config.postmortem_max_dumps = 3;
    // Every job panics: each one dumps a bundle.
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::WorkerPanic, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    for _ in 0..5 {
        let batch = client.submit(&design, &[("always", "ok")]);
        client.wait(batch);
    }
    let bundles = postmortem_bundles(&dir.0);
    assert_eq!(bundles.len(), 3, "cap holds: {bundles:?}");
    // Oldest evicted first: the survivors are the three newest sequences.
    assert!(
        bundles[0].0.starts_with("pm-000002-"),
        "oldest surviving bundle: {}",
        bundles[0].0
    );
    assert!(client.metric("server_postmortems_evicted_total") >= 2);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn health_reports_not_ready_when_the_queue_backs_up_behind_a_wedged_worker() {
    let mut config = deterministic_config();
    // The sole worker wedges forever on its first job; no budget frees it.
    config.service.faults = FaultPlan::seeded(7).fire_from(FaultSite::EngineHang, 1);
    config.max_queue_depth = 0;
    config.wait_timeout = Duration::from_millis(200);
    config.drain_timeout = Duration::from_millis(200);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);

    // Before any work: ready.
    let reply = client.call(Json::obj(vec![("op", Json::str("health"))]));
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ready"));
    assert_eq!(reply.get("live").and_then(Json::as_bool), Some(true));

    // Two jobs: the first wedges the worker, the second sits in the queue —
    // depth 1 over a capacity of 0.
    let design = client.register_counter();
    client.submit(&design, &[("always", "ok"), ("always", "bad")]);
    let deadline = Instant::now() + Duration::from_secs(5);
    let reply = loop {
        let reply = client.call(Json::obj(vec![("op", Json::str("health"))]));
        if reply.get("ready").and_then(Json::as_bool) == Some(false) {
            break reply;
        }
        assert!(
            Instant::now() < deadline,
            "health never went not_ready: {reply}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("not_ready")
    );
    assert_eq!(
        reply
            .get("checks")
            .and_then(|c| c.get("queue"))
            .and_then(|q| q.get("ok"))
            .and_then(Json::as_bool),
        Some(false),
        "{reply}"
    );
    // Liveness is unaffected: the server still answers.
    assert_eq!(reply.get("live").and_then(Json::as_bool), Some(true));
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn health_returns_to_ready_after_a_lost_worker_is_respawned() {
    let mut config = deterministic_config();
    config.service.faults = FaultPlan::seeded(7).fire_nth(FaultSite::WorkerLoss, 1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    // This job's completion kills the sole worker; the sentinel respawns it.
    let batch = client.submit(&design, &[("always", "ok")]);
    client.wait(batch);
    // A second batch proves the respawned worker serves — and health agrees
    // the quorum is back.
    let batch = client.submit(&design, &[("always", "bad")]);
    client.wait(batch);
    let reply = client.call(Json::obj(vec![("op", Json::str("health"))]));
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ready"),
        "{reply}"
    );
    let workers = reply
        .get("checks")
        .and_then(|c| c.get("workers"))
        .expect("workers check");
    assert_eq!(workers.get("alive").and_then(Json::as_u64), Some(1));
    assert_eq!(workers.get("ok").and_then(Json::as_bool), Some(true));
    let stats = client.stats();
    assert_eq!(
        stats.get("workers_respawned").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(stats.get("workers_alive").and_then(Json::as_u64), Some(1));
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn a_non_reading_subscriber_is_shed_without_stalling_the_server() {
    let mut config = deterministic_config();
    // Two workers and one hung engine run: one job wedges forever (keeping
    // its subscription streaming), the other completes normally.
    config.service.workers = 2;
    config.service.faults = FaultPlan::seeded(7).fire_nth(FaultSite::EngineHang, 1);
    config.subscribe_queue = 4;
    config.subscribe_interval = Duration::from_millis(1);
    config.wait_timeout = Duration::from_millis(300);
    config.drain_timeout = Duration::from_millis(300);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &[("always", "ok"), ("always", "bad")]);

    // The subscriber asks for 1ms ticks and then never reads a byte: its
    // socket and the bounded send queue fill until the server sheds it.
    let mut subscriber = Client::connect(addr);
    subscriber
        .writer
        .write_all(
            format!("{{\"op\":\"subscribe\",\"batch\":{batch},\"interval_ms\":1}}\n").as_bytes(),
        )
        .and_then(|()| subscriber.writer.flush())
        .expect("send subscribe");

    // Meanwhile this connection keeps getting served, the non-wedged job
    // completes, and the shed lands in the metrics.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if client.metric("server_subscribe_dropped_total") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the non-reading subscriber was never shed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let reply = client.call(Json::obj(vec![
        ("op", Json::str("poll")),
        ("batch", Json::num(batch)),
    ]));
    assert_eq!(
        reply.get("completed").and_then(Json::as_u64),
        Some(1),
        "the healthy worker kept serving while the subscriber flooded: {reply}"
    );

    // The shed closed the subscriber's socket: after the buffered frames
    // drain, it reads EOF (never a structured reply — the peer stopped
    // reading, so none could be delivered).
    subscriber
        .writer
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut drained = String::new();
    let eof = loop {
        drained.clear();
        match subscriber.reader.read_line(&mut drained) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(_) => break false,
        }
    };
    assert!(eof, "shed subscriber observes EOF");

    // Fresh connections still serve; shutdown reports the wedged job as
    // undrained instead of hanging.
    let mut fresh = Client::connect(addr);
    fresh.call(Json::obj(vec![("op", Json::str("ping"))]));
    let reply = fresh.shutdown();
    assert_eq!(reply.get("drained").and_then(Json::as_bool), Some(false));
    handle.join().expect("server thread");
}

#[test]
fn a_live_subscriber_never_perturbs_verdicts() {
    let reference = fault_free_verdicts(&THREE_JOBS);

    let mut config = deterministic_config();
    config.subscribe_interval = Duration::from_millis(1);
    let (addr, handle, _) = start(config);
    let mut client = Client::connect(addr);
    let design = client.register_counter();
    let batch = client.submit(&design, &THREE_JOBS);

    // A second connection rides the stream at the fastest tick the server
    // allows, all the way to batch_done.
    let mut subscriber = Client::connect(addr);
    subscriber
        .writer
        .write_all(
            format!("{{\"op\":\"subscribe\",\"batch\":{batch},\"interval_ms\":1}}\n").as_bytes(),
        )
        .and_then(|()| subscriber.writer.flush())
        .expect("send subscribe");
    let mut verdicts = 0;
    loop {
        let frame = subscriber.read_line();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
        match frame.get("event").and_then(Json::as_str) {
            Some("verdict") => verdicts += 1,
            Some("batch_done") => break,
            _ => {}
        }
    }
    assert_eq!(verdicts, 3, "every verdict rides the stream");

    // Observation is pure: the verdicts are byte-identical to the
    // subscriber-free run, and the progress counters actually moved.
    let results = client.wait(batch);
    let observed: Vec<String> = results.iter().map(verdict_bytes).collect();
    assert_eq!(observed, reference, "a subscriber must not perturb search");
    assert!(client.metric("core_progress_probes_total") >= 3);
    assert!(client.metric("server_subscribe_pushes_total") >= 7);
    assert_eq!(client.metric("server_subscribe_dropped_total"), 0);
    client.shutdown();
    handle.join().expect("server thread");
}

#[test]
fn idle_connections_are_reaped_by_the_read_timeout() {
    let mut config = deterministic_config();
    config.read_timeout = Some(Duration::from_millis(200));
    let (addr, handle, _) = start(config);

    let idler = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(700));
    // The server reaped the idle connection: the next exchange fails (either
    // the write breaks or the read sees EOF).
    let mut writer = idler.try_clone().expect("clone");
    let mut reader = BufReader::new(idler);
    let died = writer
        .write_all(b"{\"op\":\"ping\"}\n")
        .and_then(|()| writer.flush())
        .and_then(|()| {
            let mut line = String::new();
            reader.read_line(&mut line).map(|n| (n, line))
        })
        .map(|(n, _)| n == 0)
        .unwrap_or(true);
    assert!(died, "idle connection survived the read timeout");

    // A fresh connection serves normally.
    let mut client = Client::connect(addr);
    client.call(Json::obj(vec![("op", Json::str("ping"))]));
    client.shutdown();
    handle.join().expect("server thread");
}
