//! The paper's benchmark suite: 9 designs, 14 properties (p1–p14).

use crate::addr_decoder::{AddrDecoder, AddrDecoderConfig};
use crate::alarm_clock::AlarmClock;
use crate::arbiter::{Arbiter, ArbiterConfig};
use crate::industry::{industry_02, industry_03, industry_04, Industry01, Industry05};
use crate::token_ring::{TokenRing, TokenRingConfig};
use wlac_atpg::Verification;
use wlac_netlist::CircuitStats;

/// Size of the generated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for unit tests and quick runs.
    Small,
    /// Sizes approximating the paper's Table 1 (the two largest industrial
    /// designs are scaled down; see DESIGN.md §4).
    Paper,
}

/// Expected outcome of a property check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The assertion holds (proved or holds up to the bound).
    Pass,
    /// A witness sequence is expected to be generated.
    Witness,
}

/// One (circuit, property) pair of the paper's Table 2, with the paper's
/// reported CPU time and memory for comparison.
#[derive(Debug, Clone)]
pub struct BenchmarkCase {
    /// Design name (Table 1 row).
    pub circuit: String,
    /// Property name (`p1` .. `p14`).
    pub property: String,
    /// The bundled design + property + environment.
    pub verification: Verification,
    /// Expected outcome.
    pub expectation: Expectation,
    /// CPU seconds reported in the paper's Table 2 (Sun UltraSparc 5).
    pub paper_cpu_seconds: f64,
    /// Memory (MB) reported in the paper's Table 2.
    pub paper_memory_mb: f64,
}

fn case(
    circuit: &str,
    property: &str,
    verification: Verification,
    expectation: Expectation,
    paper_cpu_seconds: f64,
    paper_memory_mb: f64,
) -> BenchmarkCase {
    BenchmarkCase {
        circuit: circuit.to_string(),
        property: property.to_string(),
        verification,
        expectation,
        paper_cpu_seconds,
        paper_memory_mb,
    }
}

/// Builds the nine designs at the requested scale and returns the fourteen
/// property-check cases of the paper's Table 2, in order.
pub fn paper_suite(scale: Scale) -> Vec<BenchmarkCase> {
    let (decoder_cfg, ring_cfg, arbiter_cfg, fsms, d02, d03, d04) = match scale {
        Scale::Small => (
            AddrDecoderConfig::small(),
            TokenRingConfig::small(),
            ArbiterConfig::small(),
            3usize,
            3usize,
            3usize,
            3usize,
        ),
        Scale::Paper => (
            AddrDecoderConfig::paper(),
            TokenRingConfig::paper(),
            ArbiterConfig::paper(),
            64usize,
            6usize,
            4usize,
            5usize,
        ),
    };
    let decoder = AddrDecoder::new(decoder_cfg);
    let ring = TokenRing::new(ring_cfg);
    let arbiter = Arbiter::new(arbiter_cfg);
    let clock = AlarmClock::new();
    let ind01 = Industry01::new(fsms);
    let ind02 = industry_02(d02);
    let ind03 = industry_03(d03);
    let ind04 = industry_04(d04);
    let ind05 = Industry05::new();
    vec![
        case(
            "addr_decoder",
            "p1",
            decoder.p1_cell_writable(),
            Expectation::Witness,
            0.08,
            0.01,
        ),
        case(
            "addr_decoder",
            "p2",
            decoder.p2_selects_mutually_exclusive(),
            Expectation::Pass,
            0.09,
            0.01,
        ),
        case(
            "token_ring",
            "p3",
            ring.p3_grants_one_hot(),
            Expectation::Pass,
            1.88,
            1.57,
        ),
        case(
            "token_ring",
            "p4",
            ring.p4_client_eventually_granted(),
            Expectation::Witness,
            1.45,
            1.53,
        ),
        case(
            "arbiter",
            "p5",
            arbiter.p5_grants_one_hot(),
            Expectation::Pass,
            0.14,
            0.12,
        ),
        case(
            "arbiter",
            "p6",
            arbiter.p6_lowest_priority_served(),
            Expectation::Witness,
            0.59,
            0.20,
        ),
        case(
            "alarm_clock",
            "p7",
            clock.p7_rollover_to_twelve(),
            Expectation::Pass,
            0.36,
            0.88,
        ),
        case(
            "alarm_clock",
            "p8",
            clock.p8_hour_reaches_two(),
            Expectation::Witness,
            1.31,
            2.74,
        ),
        case(
            "alarm_clock",
            "p9",
            clock.p9_hour_never_thirteen(),
            Expectation::Pass,
            137.05,
            9.76,
        ),
        case(
            "industry_01",
            "p10",
            ind01.p10_dont_cares_unreachable(),
            Expectation::Pass,
            14.79,
            54.66,
        ),
        case(
            "industry_02",
            "p11",
            ind02.contention_free("p11"),
            Expectation::Pass,
            20.37,
            17.89,
        ),
        case(
            "industry_03",
            "p12",
            ind03.contention_free("p12"),
            Expectation::Pass,
            1.25,
            2.85,
        ),
        case(
            "industry_04",
            "p13",
            ind04.contention_free("p13"),
            Expectation::Pass,
            0.40,
            1.59,
        ),
        case(
            "industry_05",
            "p14",
            ind05.p14_dont_cares_unreachable(),
            Expectation::Pass,
            0.03,
            0.02,
        ),
    ]
}

/// Circuit statistics (the paper's Table 1) for the nine designs at the
/// requested scale.
pub fn circuit_statistics(scale: Scale) -> Vec<CircuitStats> {
    let suite = paper_suite(scale);
    let mut stats = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for case in &suite {
        if seen.insert(case.circuit.clone()) {
            // The verification netlist includes monitor gates; the statistics
            // still describe the design itself well enough for Table 1
            // because monitors are a small constant overhead.
            let mut s = case.verification.netlist.stats();
            s.name = case.circuit.clone();
            stats.push(s);
        }
    }
    stats
}

/// The paper's Table 1 rows (for reference in reports).
pub fn paper_table1() -> Vec<CircuitStats> {
    let row = |name: &str, lines, gates, ffs, ins, outs| CircuitStats {
        name: name.to_string(),
        lines,
        gates,
        flip_flop_bits: ffs,
        inputs: ins,
        outputs: outs,
    };
    vec![
        row("addr_decoder", 52, 307, 86, 7, 64),
        row("token_ring", 157, 4902, 536, 518, 132),
        row("arbiter", 303, 2443, 24, 69, 25),
        row("alarm_clock", 719, 1277, 33, 7, 40),
        row("industry_01", 11280, 380_000, 9922, 293, 733),
        row("industry_02", 5726, 25520, 96, 60, 25),
        row("industry_03", 694, 2623, 0, 70, 64),
        row("industry_04", 599, 924, 0, 79, 32),
        row("industry_05", 47, 210, 7, 13, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_fourteen_properties() {
        let suite = paper_suite(Scale::Small);
        assert_eq!(suite.len(), 14);
        for (i, case) in suite.iter().enumerate() {
            assert_eq!(case.property, format!("p{}", i + 1));
        }
        let passes = suite
            .iter()
            .filter(|c| c.expectation == Expectation::Pass)
            .count();
        assert_eq!(passes, 10);
    }

    #[test]
    fn statistics_cover_all_nine_designs() {
        let stats = circuit_statistics(Scale::Small);
        assert_eq!(stats.len(), 9);
        let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"alarm_clock"));
        assert!(names.contains(&"industry_05"));
        assert_eq!(paper_table1().len(), 9);
    }

    #[test]
    fn paper_scale_statistics_are_larger() {
        let small: usize = circuit_statistics(Scale::Small)
            .iter()
            .map(|s| s.gates)
            .sum();
        let paper: usize = circuit_statistics(Scale::Paper)
            .iter()
            .map(|s| s.gates)
            .sum();
        assert!(paper > small);
    }
}
