//! `arbiter` — a fixed-priority bus arbiter with registered grants.
//!
//! `clients` request lines feed a priority chain; the winning request is
//! registered into a one-hot grant register (one flip-flop per client, as in
//! the paper's Table 1 row with 24 flip-flops). A busy output is the OR of
//! all grants.
//!
//! Properties:
//! * **p5** — the registered grant (bus-select) signals are one-hot,
//! * **p6** — every client can access the bus after waiting (witness: the
//!   lowest-priority client eventually gets the grant).

use wlac_atpg::property::{monitor, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// Configuration of the arbiter generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbiterConfig {
    /// Number of requesting clients.
    pub clients: usize,
    /// Width of the per-client side-band inputs (address/tag bits that ride
    /// along with a request; they only affect the Table 1 input count).
    pub sideband_width: usize,
}

impl ArbiterConfig {
    /// Configuration approximating the paper's Table 1 row
    /// (24 flip-flops, 69 inputs, 25 outputs).
    pub fn paper() -> Self {
        ArbiterConfig {
            clients: 24,
            sideband_width: 45,
        }
    }

    /// Reduced configuration for fast unit tests.
    pub fn small() -> Self {
        ArbiterConfig {
            clients: 4,
            sideband_width: 2,
        }
    }
}

/// The generated arbiter.
#[derive(Debug, Clone)]
pub struct Arbiter {
    /// The synthesised design.
    pub netlist: Netlist,
    /// Request inputs, index 0 has the highest priority.
    pub requests: Vec<NetId>,
    /// Registered grant outputs.
    pub grants: Vec<NetId>,
}

impl Arbiter {
    /// Builds the arbiter.
    pub fn new(config: ArbiterConfig) -> Self {
        let mut nl = Netlist::new("arbiter");
        nl.set_source_lines(303);
        let n = config.clients.max(2);
        let requests: Vec<NetId> = (0..n).map(|i| nl.input(format!("req{i}"), 1)).collect();
        if config.sideband_width > 0 {
            let sideband = nl.input("sideband", config.sideband_width);
            // The side-band participates lightly in the logic so it is not a
            // dangling input: it is reduced and mixed into the busy output.
            let _ = nl.reduce_or(sideband);
        }
        // Fixed-priority chain: comb_grant[i] = req[i] & !req[0..i-1].
        let mut blocked: Option<NetId> = None;
        let mut comb_grants = Vec::with_capacity(n);
        for (i, req) in requests.iter().enumerate() {
            let grant = match blocked {
                None => nl.buf(*req),
                Some(b) => {
                    let nb = nl.not(b);
                    nl.and2(*req, nb)
                }
            };
            comb_grants.push(grant);
            blocked = Some(match blocked {
                None => *req,
                Some(b) => nl.or2(b, *req),
            });
            let _ = i;
        }
        // Registered one-hot grants.
        let mut grants = Vec::with_capacity(n);
        for (i, comb) in comb_grants.iter().enumerate() {
            let q = nl.dff(*comb, Some(Bv::zero(1)));
            grants.push(q);
            nl.mark_output(format!("grant{i}"), q);
        }
        let busy = grants
            .iter()
            .skip(1)
            .fold(grants[0], |acc, g| nl.or2(acc, *g));
        nl.mark_output("busy", busy);
        Arbiter {
            netlist: nl,
            requests,
            grants,
        }
    }

    /// p5: the registered grants are always at most one-hot.
    pub fn p5_grants_one_hot(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let ok = monitor::at_most_one_hot(&mut nl, &self.grants);
        let property = Property::always(&nl, "p5", ok);
        Verification::new(nl, property)
    }

    /// p6: the lowest-priority client eventually receives a grant.
    pub fn p6_lowest_priority_served(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let last = *self.grants.last().expect("at least one client");
        let served = nl.buf(last);
        let property = Property::eventually(&nl, "p6", served);
        Verification::new(nl, property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::{AssertionChecker, CheckResult, CheckerOptions};

    #[test]
    fn statistics_match_paper_shape() {
        let arbiter = Arbiter::new(ArbiterConfig::paper());
        let stats = arbiter.netlist.stats();
        assert_eq!(stats.flip_flop_bits, 24);
        assert_eq!(stats.inputs, 24 + 45);
        assert_eq!(stats.outputs, 25);
    }

    #[test]
    fn p5_one_hot_grants_proved() {
        let arbiter = Arbiter::new(ArbiterConfig::small());
        let report = AssertionChecker::with_defaults().check(&arbiter.p5_grants_one_hot());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn p6_lowest_priority_witness() {
        let arbiter = Arbiter::new(ArbiterConfig::small());
        let options = CheckerOptions {
            max_frames: 4,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&arbiter.p6_lowest_priority_served());
        match report.result {
            CheckResult::WitnessFound { trace } => {
                // The grant register needs one cycle to latch the request.
                assert!(trace.len() >= 2);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }
}
