//! `token_ring` — clients sharing a bus through a rotating token.
//!
//! A one-hot token register rotates by one position per cycle; client `i`
//! drives the bus exactly when it holds the token and asserts its request.
//! Each client also carries a small amount of private state (a data register
//! updated while granted), which brings the flip-flop count close to the
//! paper's Table 1 row.
//!
//! Properties:
//! * **p3** — the bus-selecting (grant) signals are one-hot at all times,
//! * **p4** — a client can access the bus after waiting a number of periods
//!   (witness: the last client eventually gets the grant).

use wlac_atpg::property::{monitor, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// Configuration of the token-ring generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenRingConfig {
    /// Number of clients on the ring.
    pub clients: usize,
    /// Width of each client's private data register.
    pub data_width: usize,
}

impl TokenRingConfig {
    /// Configuration approximating the paper's Table 1 row (536 FFs, 518
    /// inputs): 64 clients with 8-bit request/data interfaces.
    pub fn paper() -> Self {
        TokenRingConfig {
            clients: 64,
            data_width: 8,
        }
    }

    /// Reduced configuration for fast unit tests.
    pub fn small() -> Self {
        TokenRingConfig {
            clients: 4,
            data_width: 4,
        }
    }
}

/// The generated token ring.
#[derive(Debug, Clone)]
pub struct TokenRing {
    /// The synthesised design.
    pub netlist: Netlist,
    /// Per-client request inputs.
    pub requests: Vec<NetId>,
    /// Per-client grant (bus-select) outputs.
    pub grants: Vec<NetId>,
    /// Per-client token-register bits.
    pub token_bits: Vec<NetId>,
}

impl TokenRing {
    /// Builds the ring.
    pub fn new(config: TokenRingConfig) -> Self {
        let mut nl = Netlist::new("token_ring");
        nl.set_source_lines(157);
        let n = config.clients.max(2);
        // One-hot token register, initialised with the token at client 0.
        let mut token_bits = Vec::with_capacity(n);
        let mut token_ffs = Vec::with_capacity(n);
        for i in 0..n {
            let init = Bv::from_u64(1, (i == 0) as u64);
            let (q, ff) = nl.dff_deferred(1, Some(init));
            token_bits.push(q);
            token_ffs.push(ff);
            nl.mark_output(format!("token{i}"), q);
        }
        // The token rotates unconditionally: token'[i] = token[i-1].
        for i in 0..n {
            let prev = token_bits[(i + n - 1) % n];
            let next = nl.buf(prev);
            nl.connect_dff_data(token_ffs[i], next);
        }
        let mut requests = Vec::with_capacity(n);
        let mut grants = Vec::with_capacity(n);
        for (i, token_bit) in token_bits.iter().enumerate().take(n) {
            let req = nl.input(format!("req{i}"), 1);
            let data_in = nl.input(format!("data{i}"), config.data_width);
            let grant = nl.and2(*token_bit, req);
            nl.mark_output(format!("grant{i}"), grant);
            // Private data register captured while granted.
            let (q, ff) = nl.dff_deferred(config.data_width, Some(Bv::zero(config.data_width)));
            let next = nl.mux(grant, data_in, q);
            nl.connect_dff_data(ff, next);
            nl.mark_output(format!("latched{i}"), q);
            requests.push(req);
            grants.push(grant);
        }
        TokenRing {
            netlist: nl,
            requests,
            grants,
            token_bits,
        }
    }

    /// p3: the grant signals are always at most one-hot.
    pub fn p3_grants_one_hot(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let ok = monitor::at_most_one_hot(&mut nl, &self.grants);
        let property = Property::always(&nl, "p3", ok);
        Verification::new(nl, property)
    }

    /// p4: the last client eventually receives a grant (after waiting for the
    /// token to travel around the ring).
    pub fn p4_client_eventually_granted(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let last = *self.grants.last().expect("at least one client");
        let one = nl.constant_bit(true);
        let granted = nl.eq(last, one);
        let property = Property::eventually(&nl, "p4", granted);
        Verification::new(nl, property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::{AssertionChecker, CheckResult, CheckerOptions};

    #[test]
    fn statistics_match_paper_shape() {
        let ring = TokenRing::new(TokenRingConfig::paper());
        let stats = ring.netlist.stats();
        assert_eq!(stats.flip_flop_bits, 64 + 64 * 8);
        assert_eq!(stats.inputs, 64 + 64 * 8);
        assert!(stats.gates > 150);
    }

    #[test]
    fn p3_one_hot_grants_hold() {
        let ring = TokenRing::new(TokenRingConfig::small());
        let options = CheckerOptions {
            max_frames: 6,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&ring.p3_grants_one_hot());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn p4_last_client_granted_after_full_rotation() {
        let ring = TokenRing::new(TokenRingConfig::small());
        let options = CheckerOptions {
            max_frames: 8,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&ring.p4_client_eventually_granted());
        match report.result {
            CheckResult::WitnessFound { trace } => {
                // The token starts at client 0 and needs clients-1 steps to
                // reach the last client.
                assert_eq!(trace.len(), TokenRingConfig::small().clients);
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }
}
