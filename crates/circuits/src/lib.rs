//! # wlac-circuits — benchmark designs and the paper's property suite
//!
//! Generators for the nine designs evaluated in Huang & Cheng (DAC 2000)
//! — four public benchmarks (address decoder, token ring, arbiter, alarm
//! clock) and five synthetic stand-ins for the proprietary industrial
//! designs — together with the fourteen assertion properties p1–p14 of the
//! paper's Table 2, bundled as ready-to-check [`wlac_atpg::Verification`]s
//! by [`suite::paper_suite`].
//!
//! # Examples
//!
//! ```
//! use wlac_circuits::suite::{paper_suite, Scale};
//! use wlac_atpg::{AssertionChecker, CheckerOptions};
//!
//! let suite = paper_suite(Scale::Small);
//! assert_eq!(suite.len(), 14);
//! // Check the smallest property (p14).
//! let mut options = CheckerOptions::default();
//! options.max_frames = 6;
//! let report = AssertionChecker::new(options).check(&suite[13].verification);
//! assert!(report.result.is_pass());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr_decoder;
pub mod alarm_clock;
pub mod arbiter;
pub mod industry;
pub mod suite;
pub mod token_ring;

pub use addr_decoder::{AddrDecoder, AddrDecoderConfig};
pub use alarm_clock::AlarmClock;
pub use arbiter::{Arbiter, ArbiterConfig};
pub use industry::{
    industry_02, industry_03, industry_04, BusFabric, BusFabricConfig, Industry01, Industry05,
};
pub use suite::{circuit_statistics, paper_suite, paper_table1, BenchmarkCase, Expectation, Scale};
pub use token_ring::{TokenRing, TokenRingConfig};
