//! `alarm_clock` — a 12-hour alarm clock.
//!
//! The clock keeps minutes (0–59), hours (1–12) and an am/pm flag, plus an
//! alarm time and shadow registers of the previous cycle's display (used to
//! phrase the roll-over property). Time advances on `tick` unless the clock
//! is in setting mode, in which case `inc_hour` / `inc_min` adjust the
//! display directly.
//!
//! Properties (the three of the paper):
//! * **p7** — after the clock passes "11:59" it resets to "12:00",
//! * **p8** — a witness sequence brings the hour display to 2 after power-on,
//! * **p9** — the hour display can never show 13.

use wlac_atpg::property::{monitor, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// The generated alarm clock.
#[derive(Debug, Clone)]
pub struct AlarmClock {
    /// The synthesised design.
    pub netlist: Netlist,
    /// Current hour register (4 bits, 1–12).
    pub hour: NetId,
    /// Current minute register (6 bits, 0–59).
    pub minute: NetId,
    /// Previous-cycle hour register.
    pub prev_hour: NetId,
    /// Previous-cycle minute register.
    pub prev_minute: NetId,
    /// Previous-cycle "time advanced" flag.
    pub prev_advance: NetId,
}

impl AlarmClock {
    /// Builds the clock. There is a single configuration; the design matches
    /// the paper's Table 1 row (33 flip-flop bits, 7 inputs).
    pub fn new() -> Self {
        let mut nl = Netlist::new("alarm_clock");
        nl.set_source_lines(719);
        // Inputs (7 bits).
        let tick = nl.input("tick", 1);
        let set_time = nl.input("set_time", 1);
        let set_alarm = nl.input("set_alarm", 1);
        let inc_hour = nl.input("inc_hour", 1);
        let inc_min = nl.input("inc_min", 1);
        let alarm_enable = nl.input("alarm_enable", 1);
        let snooze = nl.input("snooze", 1);

        // State: power-on value is 12:00 am with the alarm cleared.
        let (hour, hour_ff) = nl.dff_deferred(4, Some(Bv::from_u64(4, 12)));
        let (minute, minute_ff) = nl.dff_deferred(6, Some(Bv::zero(6)));
        let (pm, pm_ff) = nl.dff_deferred(1, Some(Bv::zero(1)));
        let (alarm_hour, alarm_hour_ff) = nl.dff_deferred(4, Some(Bv::from_u64(4, 12)));
        let (alarm_min, alarm_min_ff) = nl.dff_deferred(6, Some(Bv::zero(6)));
        let (alarm_on, alarm_on_ff) = nl.dff_deferred(1, Some(Bv::zero(1)));

        // Helper constants.
        let c59 = nl.constant(&Bv::from_u64(6, 59));
        let c12 = nl.constant(&Bv::from_u64(4, 12));
        let c11 = nl.constant(&Bv::from_u64(4, 11));
        let min_zero = nl.constant(&Bv::zero(6));
        let hour_one = nl.constant(&Bv::from_u64(4, 1));
        let min_one = nl.constant(&Bv::from_u64(6, 1));
        let hour_inc_one = nl.constant(&Bv::from_u64(4, 1));

        // Normal time advance.
        let not_setting = nl.not(set_time);
        let advance = nl.and2(tick, not_setting);
        let min_at_59 = nl.eq(minute, c59);
        let min_plus = nl.add(minute, min_one);
        let min_rolled = nl.mux(min_at_59, min_zero, min_plus);
        let hour_at_12 = nl.eq(hour, c12);
        let hour_plus = nl.add(hour, hour_inc_one);
        let hour_rolled = nl.mux(hour_at_12, hour_one, hour_plus);
        let hour_should_roll = nl.and2(advance, min_at_59);
        let hour_at_11 = nl.eq(hour, c11);
        let pm_toggle = nl.and2(hour_should_roll, hour_at_11);
        let not_pm = nl.not(pm);
        let pm_next_normal = nl.mux(pm_toggle, not_pm, pm);

        // Setting mode adjustments.
        let set_hour_now = nl.and2(set_time, inc_hour);
        let set_min_now = nl.and2(set_time, inc_min);
        let hour_set = nl.mux(set_hour_now, hour_rolled, hour);
        let min_set = nl.mux(set_min_now, min_rolled, minute);

        // Next-state selection.
        let min_advanced = nl.mux(advance, min_rolled, min_set);
        let hour_advanced_sel = nl.mux(hour_should_roll, hour_rolled, hour);
        let hour_next = nl.mux(set_time, hour_set, hour_advanced_sel);
        let min_next = nl.mux(set_time, min_set, min_advanced);
        nl.connect_dff_data(hour_ff, hour_next);
        nl.connect_dff_data(minute_ff, min_next);
        nl.connect_dff_data(pm_ff, pm_next_normal);

        // Alarm registers: adjusted in alarm-setting mode, armed by enable.
        let set_alarm_hour = nl.and2(set_alarm, inc_hour);
        let set_alarm_min = nl.and2(set_alarm, inc_min);
        let alarm_hour_at_12 = nl.eq(alarm_hour, c12);
        let alarm_hour_plus = nl.add(alarm_hour, hour_inc_one);
        let alarm_hour_rolled = nl.mux(alarm_hour_at_12, hour_one, alarm_hour_plus);
        let alarm_hour_next = nl.mux(set_alarm_hour, alarm_hour_rolled, alarm_hour);
        let alarm_min_at_59 = nl.eq(alarm_min, c59);
        let alarm_min_plus = nl.add(alarm_min, min_one);
        let alarm_min_rolled = nl.mux(alarm_min_at_59, min_zero, alarm_min_plus);
        let alarm_min_next = nl.mux(set_alarm_min, alarm_min_rolled, alarm_min);
        nl.connect_dff_data(alarm_hour_ff, alarm_hour_next);
        nl.connect_dff_data(alarm_min_ff, alarm_min_next);
        let not_snooze = nl.not(snooze);
        let alarm_on_next = nl.and2(alarm_enable, not_snooze);
        nl.connect_dff_data(alarm_on_ff, alarm_on_next);

        // Shadow registers of the previous cycle's display, used by p7.
        let prev_hour = nl.dff(hour, Some(Bv::from_u64(4, 12)));
        let prev_minute = nl.dff(minute, Some(Bv::zero(6)));
        let prev_advance = nl.dff(advance, Some(Bv::zero(1)));

        // Alarm ring output.
        let hour_match = nl.eq(hour, alarm_hour);
        let min_match = nl.eq(minute, alarm_min);
        let time_match = nl.and2(hour_match, min_match);
        let ringing = nl.and2(alarm_on, time_match);

        nl.mark_output("hour", hour);
        nl.mark_output("minute", minute);
        nl.mark_output("pm", pm);
        nl.mark_output("alarm_hour", alarm_hour);
        nl.mark_output("alarm_minute", alarm_min);
        nl.mark_output("ringing", ringing);
        nl.mark_output("prev_hour", prev_hour);
        nl.mark_output("prev_minute", prev_minute);
        nl.mark_output("prev_advance", prev_advance);
        AlarmClock {
            netlist: nl,
            hour,
            minute,
            prev_hour,
            prev_minute,
            prev_advance,
        }
    }

    /// p7: whenever the previous cycle showed 11:59 and time advanced, the
    /// display now shows 12:00.
    pub fn p7_rollover_to_twelve(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let c11 = nl.constant(&Bv::from_u64(4, 11));
        let c59 = nl.constant(&Bv::from_u64(6, 59));
        let was_11 = nl.eq(self.prev_hour, c11);
        let was_59 = nl.eq(self.prev_minute, c59);
        let was_1159 = nl.and2(was_11, was_59);
        let antecedent = nl.and2(was_1159, self.prev_advance);
        let c12 = nl.constant(&Bv::from_u64(4, 12));
        let c0 = nl.constant(&Bv::zero(6));
        let now_12 = nl.eq(self.hour, c12);
        let now_00 = nl.eq(self.minute, c0);
        let now_1200 = nl.and2(now_12, now_00);
        let ok = monitor::implies(&mut nl, antecedent, now_1200);
        let property = Property::always(&nl, "p7", ok);
        Verification::new(nl, property)
    }

    /// p8: a witness sequence brings the hour display to 2 after power-on.
    pub fn p8_hour_reaches_two(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let reaches = monitor::reaches_value(&mut nl, self.hour, &Bv::from_u64(4, 2));
        let property = Property::eventually(&nl, "p8", reaches);
        Verification::new(nl, property)
    }

    /// p9: the hour display can never show 13.
    pub fn p9_hour_never_thirteen(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let ok = monitor::never_value(&mut nl, self.hour, &Bv::from_u64(4, 13));
        let property = Property::always(&nl, "p9", ok);
        Verification::new(nl, property)
    }
}

impl Default for AlarmClock {
    fn default() -> Self {
        AlarmClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wlac_atpg::{AssertionChecker, CheckResult, CheckerOptions};
    use wlac_sim::simulate;

    #[test]
    fn statistics_match_paper_shape() {
        let clock = AlarmClock::new();
        let stats = clock.netlist.stats();
        assert_eq!(stats.inputs, 7);
        assert_eq!(stats.flip_flop_bits, 33);
        assert!(stats.gates > 40);
    }

    #[test]
    fn simulation_rolls_over_after_11_59() {
        let clock = AlarmClock::new();
        let nl = &clock.netlist;
        let tick = nl.find_net("tick").unwrap();
        let set_time = nl.find_net("set_time").unwrap();
        let inc_hour = nl.find_net("inc_hour").unwrap();
        let inc_min = nl.find_net("inc_min").unwrap();
        // Drive the clock to 11:59 through setting mode, then tick once.
        let mut frames: Vec<HashMap<_, _>> = Vec::new();
        // 11 hour increments: 12 -> 1 -> 2 ... -> 11.
        for _ in 0..11 {
            frames.push(
                [
                    (set_time, Bv::from_u64(1, 1)),
                    (inc_hour, Bv::from_u64(1, 1)),
                ]
                .into_iter()
                .collect(),
            );
        }
        // 59 minute increments.
        for _ in 0..59 {
            frames.push(
                [
                    (set_time, Bv::from_u64(1, 1)),
                    (inc_hour, Bv::from_u64(1, 0)),
                    (inc_min, Bv::from_u64(1, 1)),
                ]
                .into_iter()
                .collect(),
            );
        }
        // One tick in normal mode, then one idle frame to observe the result.
        frames.push(
            [
                (set_time, Bv::from_u64(1, 0)),
                (inc_min, Bv::from_u64(1, 0)),
                (tick, Bv::from_u64(1, 1)),
            ]
            .into_iter()
            .collect(),
        );
        frames.push([(tick, Bv::from_u64(1, 0))].into_iter().collect());
        let run = simulate(nl, &[], &frames).unwrap();
        let last = frames.len() - 1;
        assert_eq!(run.value(last - 1, clock.hour).to_u64(), Some(11));
        assert_eq!(run.value(last - 1, clock.minute).to_u64(), Some(59));
        assert_eq!(run.value(last, clock.hour).to_u64(), Some(12));
        assert_eq!(run.value(last, clock.minute).to_u64(), Some(0));
    }

    #[test]
    fn p9_hour_never_thirteen_is_proved() {
        let clock = AlarmClock::new();
        let report = AssertionChecker::with_defaults().check(&clock.p9_hour_never_thirteen());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn p8_witness_reaches_two() {
        let clock = AlarmClock::new();
        let options = CheckerOptions {
            max_frames: 6,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&clock.p8_hour_reaches_two());
        match report.result {
            CheckResult::WitnessFound { trace } => assert!(trace.len() >= 2),
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn p7_rollover_holds() {
        let clock = AlarmClock::new();
        let options = CheckerOptions {
            max_frames: 4,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&clock.p7_rollover_to_twelve());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }
}
