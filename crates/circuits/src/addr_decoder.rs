//! `addr_decoder` — a memory address decoder with a small register file.
//!
//! Reproduces the public benchmark of the paper's Table 1 (7 inputs, 64
//! decoded select outputs, 86 flip-flop bits): a 6-bit address is decoded
//! into 64 one-hot select lines; ten 8-bit memory cells latch a data pattern
//! when written; the registered address accounts for the remaining state
//! bits.
//!
//! Properties:
//! * **p1** — a selected memory cell can be written successfully (witness),
//! * **p2** — it is impossible for two address select lines to be active at
//!   the same time (safety).

use wlac_atpg::property::{monitor, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// Configuration of the address decoder generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrDecoderConfig {
    /// Number of address bits (the decoder produces `2^addr_bits` selects).
    pub addr_bits: usize,
    /// Number of registered memory cells (each `cell_width` bits wide).
    pub cells: usize,
    /// Width of each memory cell.
    pub cell_width: usize,
}

impl AddrDecoderConfig {
    /// The configuration approximating the paper's Table 1 row
    /// (64 selects, 86 flip-flop bits, 7 input bits).
    pub fn paper() -> Self {
        AddrDecoderConfig {
            addr_bits: 6,
            cells: 10,
            cell_width: 8,
        }
    }

    /// A reduced configuration for fast unit tests.
    pub fn small() -> Self {
        AddrDecoderConfig {
            addr_bits: 3,
            cells: 2,
            cell_width: 4,
        }
    }
}

/// The generated decoder and the nets needed to phrase its properties.
#[derive(Debug, Clone)]
pub struct AddrDecoder {
    /// The synthesised design.
    pub netlist: Netlist,
    /// Address input.
    pub addr: NetId,
    /// Write-enable input.
    pub write_enable: NetId,
    /// Decoded select lines (one per address).
    pub selects: Vec<NetId>,
    /// Memory cell outputs.
    pub cells: Vec<NetId>,
    configuration: AddrDecoderConfig,
}

impl AddrDecoder {
    /// Builds the decoder.
    pub fn new(config: AddrDecoderConfig) -> Self {
        let mut nl = Netlist::new("addr_decoder");
        nl.set_source_lines(52);
        let addr = nl.input("addr", config.addr_bits);
        let write_enable = nl.input("we", 1);
        let num_selects = 1usize << config.addr_bits;
        let mut selects = Vec::with_capacity(num_selects);
        for i in 0..num_selects {
            let value = nl.constant(&Bv::from_u64(config.addr_bits, i as u64));
            let hit = nl.eq(addr, value);
            selects.push(hit);
            nl.mark_output(format!("sel{i}"), hit);
        }
        // The data written into a cell is derived from the address (the
        // original design writes a data bus; deriving it keeps the Table 1
        // input count at 7 while still exercising the datapath).
        let data = nl.zext(addr, config.cell_width);
        let pattern = nl.not(data);
        let mut cells = Vec::with_capacity(config.cells);
        // Registered address (adds addr_bits state bits as in the original).
        let addr_reg = nl.dff(addr, Some(Bv::zero(config.addr_bits)));
        nl.mark_output("addr_reg", addr_reg);
        for i in 0..config.cells {
            let (q, ff) = nl.dff_deferred(config.cell_width, Some(Bv::zero(config.cell_width)));
            let write_this = nl.and2(write_enable, selects[i % num_selects]);
            let next = nl.mux(write_this, pattern, q);
            nl.connect_dff_data(ff, next);
            cells.push(q);
            nl.mark_output(format!("cell{i}"), q);
        }
        AddrDecoder {
            netlist: nl,
            addr,
            write_enable,
            selects,
            cells,
            configuration: config,
        }
    }

    /// The configuration the decoder was generated with.
    pub fn configuration(&self) -> AddrDecoderConfig {
        self.configuration
    }

    /// p1: the first memory cell can be written with the expected pattern.
    pub fn p1_cell_writable(&self) -> Verification {
        let mut nl = self.netlist.clone();
        // Cell 0 is written with ~zext(addr) when addr == 0 and we == 1, so
        // the expected stored pattern is all-ones.
        let expected = Bv::ones(self.configuration.cell_width);
        let reaches = monitor::reaches_value(&mut nl, self.cells[0], &expected);
        let property = Property::eventually(&nl, "p1", reaches);
        Verification::new(nl, property)
    }

    /// p2: no two select lines are ever active simultaneously.
    pub fn p2_selects_mutually_exclusive(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let ok = monitor::at_most_one_hot(&mut nl, &self.selects);
        let property = Property::always(&nl, "p2", ok);
        Verification::new(nl, property)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::{AssertionChecker, CheckResult, CheckerOptions};

    #[test]
    fn statistics_match_paper_shape() {
        let decoder = AddrDecoder::new(AddrDecoderConfig::paper());
        let stats = decoder.netlist.stats();
        assert_eq!(stats.inputs, 7);
        assert_eq!(stats.flip_flop_bits, 86);
        assert!(stats.outputs >= 64);
        assert!(stats.gates > 100);
    }

    #[test]
    fn p2_holds_on_small_configuration() {
        let decoder = AddrDecoder::new(AddrDecoderConfig::small());
        let report =
            AssertionChecker::with_defaults().check(&decoder.p2_selects_mutually_exclusive());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn p1_witness_found_on_small_configuration() {
        let decoder = AddrDecoder::new(AddrDecoderConfig::small());
        let options = CheckerOptions {
            max_frames: 4,
            ..CheckerOptions::default()
        };
        let report = AssertionChecker::new(options).check(&decoder.p1_cell_writable());
        assert!(
            matches!(report.result, CheckResult::WitnessFound { .. }),
            "got {:?}",
            report.result
        );
    }
}
