//! Synthetic stand-ins for the paper's five industrial designs.
//!
//! The originals are proprietary; these generators reproduce the *property
//! workload* the paper describes for them — wide tri-state buses whose
//! enables must be one-hot or whose data must agree (bus contention,
//! p11–p13), and control blocks whose internal don't-care states must be
//! unreachable (p10, p14) — with the bus widths the paper quotes (152, 128
//! and 32 bits) and parameterisable control size. See DESIGN.md §4 for the
//! substitution rationale.

use wlac_atpg::property::{monitor, Property, Verification};
use wlac_bv::Bv;
use wlac_netlist::{NetId, Netlist};

/// `industry_01`: a farm of interacting one-hot-encoded FSMs (control logic
/// dominated, as the paper's largest design). The internal don't-cares are
/// the non-one-hot state encodings.
#[derive(Debug, Clone)]
pub struct Industry01 {
    /// The synthesised design.
    pub netlist: Netlist,
    /// One state-bit vector per FSM.
    pub fsm_states: Vec<Vec<NetId>>,
}

impl Industry01 {
    /// Builds the design with `fsms` four-state machines.
    pub fn new(fsms: usize) -> Self {
        let mut nl = Netlist::new("industry_01");
        nl.set_source_lines(11280);
        let fsms = fsms.max(1);
        let mut fsm_states = Vec::with_capacity(fsms);
        let mut prev_done: Option<NetId> = None;
        for f in 0..fsms {
            let advance_req = nl.input(format!("adv{f}"), 1);
            // One-hot state register: IDLE, BUSY, WAIT, DONE.
            let mut bits = Vec::with_capacity(4);
            let mut ffs = Vec::with_capacity(4);
            for s in 0..4 {
                let init = Bv::from_u64(1, (s == 0) as u64);
                let (q, ff) = nl.dff_deferred(1, Some(init));
                bits.push(q);
                ffs.push(ff);
                nl.mark_output(format!("fsm{f}_s{s}"), q);
            }
            // The machine advances (rotates its one-hot state) when its
            // request is high and, for chained machines, when the previous
            // machine is in DONE.
            let advance = match prev_done {
                None => nl.buf(advance_req),
                Some(done) => nl.and2(advance_req, done),
            };
            for s in 0..4 {
                let prev_bit = bits[(s + 3) % 4];
                let next = nl.mux(advance, prev_bit, bits[s]);
                nl.connect_dff_data(ffs[s], next);
            }
            prev_done = Some(bits[3]);
            fsm_states.push(bits);
        }
        Industry01 {
            netlist: nl,
            fsm_states,
        }
    }

    /// p10: the don't-care (non-one-hot) state encodings are unreachable,
    /// i.e. every FSM's state register stays exactly one-hot.
    pub fn p10_dont_cares_unreachable(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let mut ok: Option<NetId> = None;
        for bits in &self.fsm_states {
            let one_hot = monitor::exactly_one_hot(&mut nl, bits);
            ok = Some(match ok {
                None => one_hot,
                Some(acc) => nl.and2(acc, one_hot),
            });
        }
        let ok = ok.expect("at least one fsm");
        let property = Property::always(&nl, "p10", ok);
        Verification::new(nl, property)
    }
}

/// A tri-state bus fabric: `drivers` sources of `width`-bit data, each gated
/// by an enable. Enables are decoded from a select value (so at most one is
/// active), optionally registered, and an optional broadcast mode turns on
/// several enables that all forward the *same* data (the "consensus" case the
/// paper describes for p11–p13).
#[derive(Debug, Clone)]
pub struct BusFabric {
    /// The synthesised design.
    pub netlist: Netlist,
    /// Per-driver enables.
    pub enables: Vec<NetId>,
    /// Per-driver data values.
    pub data: Vec<NetId>,
}

/// Configuration of [`BusFabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFabricConfig {
    /// Design name (`industry_02` .. `industry_04`).
    pub name: &'static str,
    /// Estimated HDL line count for Table 1.
    pub source_lines: usize,
    /// Number of bus drivers.
    pub drivers: usize,
    /// Bus width in bits.
    pub width: usize,
    /// Register the enables (adds sequential behaviour as in industry_02).
    pub registered: bool,
    /// Include a broadcast mode in which several enables share one data
    /// source (exercising the consensus arm of the contention check).
    pub broadcast: bool,
}

impl BusFabric {
    /// Builds the fabric.
    pub fn new(config: BusFabricConfig) -> Self {
        let mut nl = Netlist::new(config.name);
        nl.set_source_lines(config.source_lines);
        let drivers = config.drivers.max(2);
        let sel_bits = drivers.next_power_of_two().trailing_zeros() as usize;
        let select = nl.input("select", sel_bits.max(1));
        let broadcast = if config.broadcast {
            Some(nl.input("broadcast", 1))
        } else {
            None
        };
        let shared = nl.input("shared_data", config.width.min(32));
        let _observability = nl.reduce_or(shared);
        // The pattern every driver forwards in broadcast mode: a fixed idle
        // word, so overlapping enables always agree (the consensus case).
        let mut idle_pattern = Bv::zero(config.width);
        for bit in (0..config.width).step_by(2) {
            idle_pattern = idle_pattern.with_bit(bit, true);
        }
        let shared_wide = nl.constant(&idle_pattern);
        let mut enables = Vec::with_capacity(drivers);
        let mut data = Vec::with_capacity(drivers);
        for d in 0..drivers {
            let own = nl.input(format!("src{d}"), config.width.min(16));
            let own_wide = nl.zext(own, config.width);
            let idx = nl.constant(&Bv::from_u64(sel_bits.max(1), d as u64));
            let selected = nl.eq(select, idx);
            let enable_comb = match broadcast {
                Some(b) => nl.or2(selected, b),
                None => selected,
            };
            let enable = if config.registered {
                nl.dff(enable_comb, Some(Bv::zero(1)))
            } else {
                enable_comb
            };
            // In broadcast mode every driver forwards the shared data, so
            // simultaneous enables are contention-free by consensus.
            let value_comb = match broadcast {
                Some(b) => nl.mux(b, shared_wide, own_wide),
                None => own_wide,
            };
            let value = if config.registered {
                nl.dff(value_comb, Some(Bv::zero(config.width)))
            } else {
                value_comb
            };
            nl.mark_output(format!("en{d}"), enable);
            enables.push(enable);
            data.push(value);
        }
        // The merged bus value (OR of gated drivers) as an observable output.
        let zero = nl.constant(&Bv::zero(config.width));
        let mut bus = zero;
        for d in 0..drivers {
            let gated = nl.mux(enables[d], data[d], zero);
            bus = nl.or2(bus, gated);
        }
        nl.mark_output("bus", bus);
        BusFabric {
            netlist: nl,
            enables,
            data,
        }
    }

    /// The bus-contention assertion (p11/p12/p13): whenever two drivers are
    /// enabled simultaneously their data values agree.
    pub fn contention_free(&self, name: &str) -> Verification {
        let mut nl = self.netlist.clone();
        let ok = monitor::bus_contention_free(&mut nl, &self.enables, &self.data);
        let property = Property::always(&nl, name, ok);
        Verification::new(nl, property)
    }
}

/// `industry_02`: registered 152-bit tri-state bus (paper: 152-bit signals).
pub fn industry_02(drivers: usize) -> BusFabric {
    BusFabric::new(BusFabricConfig {
        name: "industry_02",
        source_lines: 5726,
        drivers,
        width: 152,
        registered: true,
        broadcast: false,
    })
}

/// `industry_03`: combinational 128-bit bus with a broadcast/consensus mode.
pub fn industry_03(drivers: usize) -> BusFabric {
    BusFabric::new(BusFabricConfig {
        name: "industry_03",
        source_lines: 694,
        drivers,
        width: 128,
        registered: false,
        broadcast: true,
    })
}

/// `industry_04`: combinational 32-bit bus.
pub fn industry_04(drivers: usize) -> BusFabric {
    BusFabric::new(BusFabricConfig {
        name: "industry_04",
        source_lines: 599,
        drivers,
        width: 32,
        registered: false,
        broadcast: false,
    })
}

/// `industry_05`: a small control block whose 3-bit mode register never
/// leaves the set of legal (gray-coded) values; the remaining encodings are
/// internal don't-cares.
#[derive(Debug, Clone)]
pub struct Industry05 {
    /// The synthesised design.
    pub netlist: Netlist,
    /// The mode register.
    pub mode: NetId,
}

impl Industry05 {
    /// Builds the design.
    pub fn new() -> Self {
        let mut nl = Netlist::new("industry_05");
        nl.set_source_lines(47);
        let step = nl.input("step", 1);
        let reverse = nl.input("reverse", 1);
        let hold = nl.input("hold", 1);
        let tag = nl.input("tag", 10);
        let _ = nl.reduce_or(tag);
        // Mode register walks a 4-entry gray-code cycle 0,1,3,2.
        let (mode, mode_ff) = nl.dff_deferred(3, Some(Bv::zero(3)));
        let (phase, phase_ff) = nl.dff_deferred(4, Some(Bv::from_u64(4, 1)));
        let table = [0u64, 1, 3, 2];
        // next_forward[i] encodes the gray successor, next_backward the predecessor.
        let mut next_forward = nl.constant(&Bv::from_u64(3, table[1]));
        let mut next_backward = nl.constant(&Bv::from_u64(3, table[3]));
        for i in (0..4).rev() {
            let here = nl.constant(&Bv::from_u64(3, table[i]));
            let fwd = nl.constant(&Bv::from_u64(3, table[(i + 1) % 4]));
            let bwd = nl.constant(&Bv::from_u64(3, table[(i + 3) % 4]));
            let at = nl.eq(mode, here);
            next_forward = nl.mux(at, fwd, next_forward);
            next_backward = nl.mux(at, bwd, next_backward);
        }
        let stepped = nl.mux(reverse, next_backward, next_forward);
        let moving = {
            let not_hold = nl.not(hold);
            nl.and2(step, not_hold)
        };
        let mode_next = nl.mux(moving, stepped, mode);
        nl.connect_dff_data(mode_ff, mode_next);
        // A rotating one-hot phase register (3 more flip-flops of state).
        let rot = nl.slice(phase, 3, 1);
        let low = nl.slice(phase, 0, 3);
        let phase_next = nl.concat(low, rot);
        nl.connect_dff_data(phase_ff, phase_next);
        nl.mark_output("mode", mode);
        Industry05 { netlist: nl, mode }
    }

    /// p14: the don't-care encodings of the mode register (values >= 4) are
    /// unreachable.
    pub fn p14_dont_cares_unreachable(&self) -> Verification {
        let mut nl = self.netlist.clone();
        let four = nl.constant(&Bv::from_u64(3, 4));
        let ok = nl.lt(self.mode, four);
        let property = Property::always(&nl, "p14", ok);
        Verification::new(nl, property)
    }
}

impl Default for Industry05 {
    fn default() -> Self {
        Industry05::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlac_atpg::{AssertionChecker, CheckerOptions};

    fn options(frames: usize) -> CheckerOptions {
        CheckerOptions {
            max_frames: frames,
            ..CheckerOptions::default()
        }
    }

    #[test]
    fn industry01_one_hot_states_hold() {
        let design = Industry01::new(3);
        let report = AssertionChecker::new(options(4)).check(&design.p10_dont_cares_unreachable());
        assert!(report.result.is_pass(), "got {:?}", report.result);
    }

    #[test]
    fn industry02_contention_free() {
        let fabric = industry_02(3);
        let report = AssertionChecker::new(options(3)).check(&fabric.contention_free("p11"));
        assert!(report.result.is_pass(), "got {:?}", report.result);
        assert_eq!(fabric.netlist.name(), "industry_02");
        assert_eq!(fabric.netlist.net_width(fabric.data[0]), 152);
    }

    #[test]
    fn industry03_consensus_broadcast_contention_free() {
        let fabric = industry_03(3);
        let report = AssertionChecker::new(options(2)).check(&fabric.contention_free("p12"));
        assert!(report.result.is_pass(), "got {:?}", report.result);
        assert_eq!(fabric.netlist.stats().flip_flop_bits, 0);
    }

    #[test]
    fn industry04_contention_free() {
        let fabric = industry_04(4);
        let report = AssertionChecker::new(options(2)).check(&fabric.contention_free("p13"));
        assert!(report.result.is_pass(), "got {:?}", report.result);
        assert_eq!(fabric.netlist.net_width(fabric.data[0]), 32);
    }

    #[test]
    fn industry05_dont_cares_unreachable() {
        let design = Industry05::new();
        let report = AssertionChecker::new(options(6)).check(&design.p14_dont_cares_unreachable());
        assert!(report.result.is_pass(), "got {:?}", report.result);
        let stats = design.netlist.stats();
        assert_eq!(stats.flip_flop_bits, 7);
        assert_eq!(stats.inputs, 13);
    }
}
