//! # wlac-netlist — word-level RTL netlists
//!
//! The netlist model used throughout the WLAC assertion checker
//! (a reproduction of Huang & Cheng, DAC 2000). A design is a
//! [`Netlist`] of word-level primitives ([`GateKind`]): Boolean gates,
//! arithmetic units, comparators, multiplexors and flip-flops — the five
//! primitive classes the paper's "quick synthesis" produces. Sequential
//! behaviour is analysed through [`Unrolling`], the time-frame expansion
//! that turns flip-flops into frame-connecting buffers and initial-state
//! variables.
//!
//! # Examples
//!
//! ```
//! use wlac_netlist::Netlist;
//! use wlac_bv::Bv;
//!
//! // if (a > b) y = a - b; else y = 0;
//! let mut nl = Netlist::new("sat_sub");
//! let a = nl.input("a", 8);
//! let b = nl.input("b", 8);
//! let gt = nl.gt(a, b);
//! let diff = nl.sub(a, b);
//! let zero = nl.constant(&Bv::zero(8));
//! let y = nl.mux(gt, diff, zero);
//! nl.mark_output("y", y);
//!
//! assert_eq!(nl.stats().gates, 4);
//! assert_eq!(nl.interface_nets(), vec![gt]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod ids;
mod inputs;
mod netlist;
mod stats;
mod unroll;

pub use gate::{Gate, GateKind};
pub use ids::{GateId, NetId};
pub use inputs::GateInputs;
pub use netlist::{CombinationalCycleError, GateShapeError, NetInfo, Netlist};
pub use stats::CircuitStats;
pub use unroll::{InitialState, Unrolling};
