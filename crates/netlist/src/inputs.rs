//! Inline small-vector storage for gate input pins.
//!
//! Almost every word-level primitive has at most three inputs (the mux), so
//! storing them in a `Vec<NetId>` pays one heap allocation per gate — which
//! shows up as per-bound setup cost when a bounded checker expands thousands
//! of gates per time-frame. [`GateInputs`] keeps up to [`GateInputs::INLINE`]
//! pins inline and only spills wider fan-in gates (e.g. `and_many` monitors)
//! to the heap. It dereferences to `[NetId]`, so all slice-style consumers
//! (indexing, iteration, `len`) are unaffected.

use crate::ids::NetId;
use std::fmt;
use std::ops::{Deref, DerefMut};

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [NetId; GateInputs::INLINE],
    },
    Spilled(Vec<NetId>),
}

/// The input pins of a gate: inline up to [`GateInputs::INLINE`] nets,
/// heap-allocated beyond that.
#[derive(Clone)]
pub struct GateInputs {
    repr: Repr,
}

impl GateInputs {
    /// Number of pins stored without a heap allocation. Three covers every
    /// fixed-arity primitive (mux); the fourth slot absorbs small n-ary
    /// Boolean gates.
    pub const INLINE: usize = 4;

    /// Creates an empty pin list (e.g. for constant drivers).
    pub fn new() -> Self {
        GateInputs {
            repr: Repr::Inline {
                len: 0,
                buf: [NetId(0); GateInputs::INLINE],
            },
        }
    }

    /// Appends one pin, spilling to the heap when the inline capacity is
    /// exceeded.
    pub fn push(&mut self, net: NetId) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if (*len as usize) < GateInputs::INLINE {
                    buf[*len as usize] = net;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(GateInputs::INLINE * 2);
                    spilled.extend_from_slice(&buf[..]);
                    spilled.push(net);
                    self.repr = Repr::Spilled(spilled);
                }
            }
            Repr::Spilled(v) => v.push(net),
        }
    }

    /// `true` when the pins live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// The pins as a slice.
    pub fn as_slice(&self) -> &[NetId] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [NetId] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }
}

impl Default for GateInputs {
    fn default() -> Self {
        GateInputs::new()
    }
}

impl Deref for GateInputs {
    type Target = [NetId];

    fn deref(&self) -> &[NetId] {
        self.as_slice()
    }
}

impl DerefMut for GateInputs {
    fn deref_mut(&mut self) -> &mut [NetId] {
        self.as_mut_slice()
    }
}

impl PartialEq for GateInputs {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for GateInputs {}

impl fmt::Debug for GateInputs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<NetId> for GateInputs {
    fn from_iter<I: IntoIterator<Item = NetId>>(iter: I) -> Self {
        let mut inputs = GateInputs::new();
        for net in iter {
            inputs.push(net);
        }
        inputs
    }
}

impl From<Vec<NetId>> for GateInputs {
    fn from(v: Vec<NetId>) -> Self {
        if v.len() <= GateInputs::INLINE {
            v.into_iter().collect()
        } else {
            GateInputs {
                repr: Repr::Spilled(v),
            }
        }
    }
}

impl From<&[NetId]> for GateInputs {
    fn from(s: &[NetId]) -> Self {
        s.iter().copied().collect()
    }
}

impl<const N: usize> From<[NetId; N]> for GateInputs {
    fn from(a: [NetId; N]) -> Self {
        a.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a GateInputs {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NetId {
        NetId::from_index(i)
    }

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut pins = GateInputs::new();
        assert!(pins.is_inline());
        assert!(pins.is_empty());
        for i in 0..GateInputs::INLINE {
            pins.push(n(i));
            assert!(pins.is_inline(), "{i} pins must stay inline");
        }
        pins.push(n(99));
        assert!(!pins.is_inline());
        assert_eq!(pins.len(), GateInputs::INLINE + 1);
        assert_eq!(pins[GateInputs::INLINE], n(99));
    }

    #[test]
    fn slice_views_and_equality() {
        let a: GateInputs = vec![n(1), n(2), n(3)].into();
        let b: GateInputs = [n(1), n(2), n(3)].into();
        assert!(a.is_inline());
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &[n(1), n(2), n(3)]);
        assert_eq!(a.iter().count(), 3);
        // Mutation through DerefMut (used by `connect_dff_data`).
        let mut c = a.clone();
        c[0] = n(7);
        assert_ne!(c, a);
        assert_eq!(c[0], n(7));
        assert_eq!(format!("{c:?}"), format!("{:?}", c.as_slice()));
    }

    #[test]
    fn conversions_preserve_order_across_the_spill_boundary() {
        let wide: Vec<NetId> = (0..9).map(n).collect();
        let from_vec: GateInputs = wide.clone().into();
        let from_slice: GateInputs = wide.as_slice().into();
        let collected: GateInputs = wide.iter().copied().collect();
        assert!(!from_vec.is_inline());
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec, collected);
        assert_eq!(from_vec.as_slice(), wide.as_slice());
    }
}
