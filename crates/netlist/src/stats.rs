//! Circuit statistics in the shape of the paper's Table 1.

use std::fmt;

/// Aggregate statistics of a design, matching the columns of Table 1 of the
/// paper (`#lines`, `#gates`, `#FFs`, `#ins`, `#outs`).
///
/// # Examples
///
/// ```
/// use wlac_netlist::{CircuitStats, Netlist};
///
/// let mut nl = Netlist::new("addr_decoder");
/// let a = nl.input("a", 7);
/// nl.mark_output("hit", a);
/// let stats: CircuitStats = nl.stats();
/// assert_eq!(stats.inputs, 7);
/// assert_eq!(stats.flip_flop_bits, 0);
/// println!("{stats}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Design name.
    pub name: String,
    /// Estimated number of HDL source lines (0 when unknown).
    pub lines: usize,
    /// Number of word-level gates excluding flip-flops.
    pub gates: usize,
    /// Total number of flip-flop *bits* (a 4-bit register counts as 4).
    pub flip_flop_bits: usize,
    /// Total number of primary input bits.
    pub inputs: usize,
    /// Total number of primary output bits.
    pub outputs: usize,
}

impl CircuitStats {
    /// Formats the statistics as a row of the Table-1-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:>7} {:>8} {:>6} {:>6} {:>6}",
            self.name, self.lines, self.gates, self.flip_flop_bits, self.inputs, self.outputs
        )
    }

    /// Header matching [`CircuitStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>7} {:>8} {:>6} {:>6} {:>6}",
            "ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs"
        )
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_row_contains_all_columns() {
        let s = CircuitStats {
            name: "arbiter".into(),
            lines: 303,
            gates: 2443,
            flip_flop_bits: 24,
            inputs: 69,
            outputs: 25,
        };
        let row = s.table_row();
        for piece in ["arbiter", "303", "2443", "24", "69", "25"] {
            assert!(row.contains(piece), "missing {piece} in {row}");
        }
        assert!(CircuitStats::table_header().contains("#FFs"));
        assert_eq!(s.to_string(), s.table_row());
    }
}
