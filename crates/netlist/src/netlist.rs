//! The word-level RTL netlist data model.

use crate::gate::{Gate, GateKind};
use crate::ids::{GateId, NetId};
use crate::inputs::GateInputs;
use crate::stats::CircuitStats;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use wlac_bv::Bv;

/// Information attached to a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetInfo {
    /// Width of the signal in bits.
    pub width: usize,
    /// Optional human-readable name (primary inputs and outputs always have one).
    pub name: Option<String>,
}

/// Error produced when a gate is added with inconsistent widths or pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateShapeError {
    message: String,
}

impl GateShapeError {
    fn new(message: impl Into<String>) -> Self {
        GateShapeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for GateShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid gate shape: {}", self.message)
    }
}

impl Error for GateShapeError {}

/// Error produced when a combinational cycle is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinationalCycleError {
    /// A net that participates in the cycle.
    pub net: NetId,
}

impl fmt::Display for CombinationalCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through net {}", self.net)
    }
}

impl Error for CombinationalCycleError {}

/// A word-level RTL netlist: nets, gates, primary inputs and outputs.
///
/// The netlist is the common structure shared by the front end, the
/// simulator, the ATPG engine and the baselines. Gates are word-level
/// primitives ([`GateKind`]); every net has a fixed width.
///
/// # Examples
///
/// Build a comparator fed by an adder and inspect the structure:
///
/// ```
/// use wlac_netlist::{GateKind, Netlist};
/// use wlac_bv::Bv;
///
/// let mut nl = Netlist::new("demo");
/// let a = nl.input("a", 4);
/// let b = nl.input("b", 4);
/// let sum = nl.add(a, b);
/// let limit = nl.constant(&Bv::from_u64(4, 9));
/// let over = nl.gt(sum, limit);
/// nl.mark_output("over", over);
///
/// assert_eq!(nl.net_width(sum), 4);
/// assert_eq!(nl.net_width(over), 1);
/// assert_eq!(nl.stats().inputs, 8); // input *bits*: two 4-bit ports
/// assert!(nl.combinational_order().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<NetInfo>,
    gates: Vec<Gate>,
    driver: Vec<Option<GateId>>,
    fanouts: Vec<Vec<GateId>>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    /// Estimated number of HDL source lines for the design, used only for
    /// reporting Table 1 statistics.
    source_lines: usize,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            driver: Vec::new(),
            fanouts: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            source_lines: 0,
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the estimated HDL line count reported by [`Netlist::stats`].
    pub fn set_source_lines(&mut self, lines: usize) {
        self.source_lines = lines;
    }

    /// Adds an anonymous net of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn add_net(&mut self, width: usize) -> NetId {
        self.add_named_net(width, None::<String>)
    }

    /// Adds a net with an optional name.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn add_named_net(&mut self, width: usize, name: Option<impl Into<String>>) -> NetId {
        assert!(width > 0, "net width must be positive");
        let id = NetId(self.nets.len() as u32);
        self.nets.push(NetInfo {
            width,
            name: name.map(Into::into),
        });
        self.driver.push(None);
        self.fanouts.push(Vec::new());
        id
    }

    /// Declares a primary input of the given width and returns its net.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> NetId {
        let id = self.add_named_net(width, Some(name));
        self.inputs.push(id);
        id
    }

    /// Marks a net as a primary output under the given name.
    pub fn mark_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Marks an existing, undriven net as a primary input.
    ///
    /// Used by the time-frame expansion, which first creates all per-frame
    /// nets and then declares the frame-0 flip-flop outputs and per-frame
    /// copies of the original inputs as inputs of the expanded circuit.
    ///
    /// # Panics
    ///
    /// Panics if the net already has a driver.
    pub fn mark_input(&mut self, net: NetId) {
        assert!(
            self.driver(net).is_none(),
            "net {net} already has a driver and cannot be an input"
        );
        if !self.inputs.contains(&net) {
            self.inputs.push(net);
        }
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Width of a net.
    pub fn net_width(&self, net: NetId) -> usize {
        self.nets[net.index()].width
    }

    /// Name of a net, if any.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.nets[net.index()].name.as_deref()
    }

    /// Finds a net by name (inputs, outputs and named internal nets).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(|i| NetId(i as u32))
            .or_else(|| {
                self.outputs
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, id)| *id)
            })
    }

    /// The primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterator over `(GateId, &Gate)`.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Iterator over all net ids.
    pub fn nets(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// The gate driving a net, or `None` for primary inputs and floating nets.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net.index()]
    }

    /// The gates reading a net.
    pub fn fanouts(&self, net: NetId) -> &[GateId] {
        &self.fanouts[net.index()]
    }

    /// `true` when the net is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.driver(net).is_none() && self.inputs.contains(&net)
    }

    /// `true` when the net is single-bit, which is the paper's notion of a
    /// *control* signal (decision candidates are restricted to these).
    pub fn is_control_net(&self, net: NetId) -> bool {
        self.net_width(net) == 1
    }

    /// All flip-flop gates.
    pub fn flip_flops(&self) -> Vec<GateId> {
        self.gates()
            .filter(|(_, g)| g.kind.is_flip_flop())
            .map(|(id, _)| id)
            .collect()
    }

    /// Adds a gate after validating its shape (pin count and widths).
    ///
    /// Inputs are anything convertible into [`GateInputs`] — a `Vec`, a
    /// slice, or a fixed-size array (`[a, b]`), the latter avoiding a heap
    /// allocation for gates of up to [`GateInputs::INLINE`] pins.
    ///
    /// # Errors
    ///
    /// Returns [`GateShapeError`] when the pin count or widths are
    /// inconsistent for the gate kind, or when the output net already has a
    /// driver.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: impl Into<GateInputs>,
        output: NetId,
    ) -> Result<GateId, GateShapeError> {
        let inputs = inputs.into();
        self.validate_gate(&kind, &inputs, output)?;
        let id = GateId(self.gates.len() as u32);
        if self.driver[output.index()].is_some() {
            return Err(GateShapeError::new(format!(
                "net {output} already has a driver"
            )));
        }
        self.driver[output.index()] = Some(id);
        for input in &inputs {
            self.fanouts[input.index()].push(id);
        }
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        Ok(id)
    }

    fn validate_gate(
        &self,
        kind: &GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<(), GateShapeError> {
        let w = |n: NetId| self.net_width(n);
        let out_w = w(output);
        let expect = |cond: bool, msg: String| -> Result<(), GateShapeError> {
            if cond {
                Ok(())
            } else {
                Err(GateShapeError::new(msg))
            }
        };
        match kind {
            GateKind::Const(v) => expect(
                inputs.is_empty() && v.width() == out_w,
                format!("const expects 0 inputs and width {out_w}"),
            ),
            GateKind::Not | GateKind::Buf => expect(
                inputs.len() == 1 && w(inputs[0]) == out_w,
                "unary gate expects one input of the output width".into(),
            ),
            GateKind::And | GateKind::Or | GateKind::Xor => expect(
                inputs.len() >= 2 && inputs.iter().all(|i| w(*i) == out_w),
                "n-ary bitwise gate expects >=2 inputs of the output width".into(),
            ),
            GateKind::ReduceAnd | GateKind::ReduceOr | GateKind::ReduceXor => expect(
                inputs.len() == 1 && out_w == 1,
                "reduction gate expects one input and a 1-bit output".into(),
            ),
            GateKind::Add | GateKind::Sub | GateKind::Mul => expect(
                inputs.len() == 2 && w(inputs[0]) == out_w && w(inputs[1]) == out_w,
                "arithmetic gate expects two inputs of the output width".into(),
            ),
            GateKind::Shl | GateKind::Shr => expect(
                inputs.len() == 2 && w(inputs[0]) == out_w,
                "shift gate expects [value, amount] with value of the output width".into(),
            ),
            GateKind::Eq
            | GateKind::Ne
            | GateKind::Lt
            | GateKind::Le
            | GateKind::Gt
            | GateKind::Ge => expect(
                inputs.len() == 2 && w(inputs[0]) == w(inputs[1]) && out_w == 1,
                "comparator expects two equal-width inputs and a 1-bit output".into(),
            ),
            GateKind::Mux => expect(
                inputs.len() == 3
                    && w(inputs[0]) == 1
                    && w(inputs[1]) == out_w
                    && w(inputs[2]) == out_w,
                "mux expects [sel(1), then, else] with data of the output width".into(),
            ),
            GateKind::Concat => expect(
                inputs.len() == 2 && w(inputs[0]) + w(inputs[1]) == out_w,
                "concat expects two inputs whose widths sum to the output width".into(),
            ),
            GateKind::Slice { lo } => expect(
                inputs.len() == 1 && lo + out_w <= w(inputs[0]),
                "slice range exceeds the input width".into(),
            ),
            GateKind::ZeroExt => expect(
                inputs.len() == 1 && w(inputs[0]) <= out_w,
                "zero extension expects a narrower input".into(),
            ),
            GateKind::Dff { init } => expect(
                inputs.len() == 1
                    && w(inputs[0]) == out_w
                    && init.as_ref().map(|v| v.width() == out_w).unwrap_or(true),
                "dff expects one data input of the output width".into(),
            ),
        }
    }

    // --- Convenience constructors -------------------------------------------------
    //
    // These create the output net and panic on shape errors; they are meant
    // for programmatic circuit construction where a width mismatch is a bug
    // in the construction code.

    /// Adds a constant gate and returns its output net.
    pub fn constant(&mut self, value: &Bv) -> NetId {
        let out = self.add_net(value.width());
        self.add_gate(GateKind::Const(value.clone()), GateInputs::new(), out)
            .expect("const gate");
        out
    }

    /// Single-bit constant.
    pub fn constant_bit(&mut self, b: bool) -> NetId {
        self.constant(&Bv::from_bool(b))
    }

    fn binary(&mut self, kind: GateKind, a: NetId, b: NetId, out_width: usize) -> NetId {
        let out = self.add_net(out_width);
        self.add_gate(kind, [a, b], out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Bitwise AND of two equal-width nets.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::And, a, b, w)
    }

    /// Bitwise AND of two or more equal-width nets.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two nets are supplied or widths differ.
    pub fn and_many(&mut self, nets: &[NetId]) -> NetId {
        assert!(nets.len() >= 2, "and_many needs at least two nets");
        let w = self.net_width(nets[0]);
        let out = self.add_net(w);
        self.add_gate(GateKind::And, nets, out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Bitwise OR of two equal-width nets.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Or, a, b, w)
    }

    /// Bitwise OR of two or more equal-width nets.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two nets are supplied or widths differ.
    pub fn or_many(&mut self, nets: &[NetId]) -> NetId {
        assert!(nets.len() >= 2, "or_many needs at least two nets");
        let w = self.net_width(nets[0]);
        let out = self.add_net(w);
        self.add_gate(GateKind::Or, nets, out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Bitwise XOR of two equal-width nets.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Xor, a, b, w)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NetId) -> NetId {
        let w = self.net_width(a);
        let out = self.add_net(w);
        self.add_gate(GateKind::Not, [a], out).expect("not gate");
        out
    }

    /// Identity buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        let w = self.net_width(a);
        let out = self.add_net(w);
        self.add_gate(GateKind::Buf, [a], out).expect("buf");
        out
    }

    /// Reduction OR (any bit set).
    pub fn reduce_or(&mut self, a: NetId) -> NetId {
        let out = self.add_net(1);
        self.add_gate(GateKind::ReduceOr, [a], out)
            .expect("reduce_or");
        out
    }

    /// Reduction AND (all bits set).
    pub fn reduce_and(&mut self, a: NetId) -> NetId {
        let out = self.add_net(1);
        self.add_gate(GateKind::ReduceAnd, [a], out)
            .expect("reduce_and");
        out
    }

    /// Reduction XOR (parity).
    pub fn reduce_xor(&mut self, a: NetId) -> NetId {
        let out = self.add_net(1);
        self.add_gate(GateKind::ReduceXor, [a], out)
            .expect("reduce_xor");
        out
    }

    /// Modular adder.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Add, a, b, w)
    }

    /// Modular subtractor `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Sub, a, b, w)
    }

    /// Modular multiplier.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mul(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Mul, a, b, w)
    }

    /// Logical shift left by a net amount.
    pub fn shl(&mut self, a: NetId, amount: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Shl, a, amount, w)
    }

    /// Logical shift right by a net amount.
    pub fn shr(&mut self, a: NetId, amount: NetId) -> NetId {
        let w = self.net_width(a);
        self.binary(GateKind::Shr, a, amount, w)
    }

    /// Equality comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Eq, a, b, 1)
    }

    /// Disequality comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn ne(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Ne, a, b, 1)
    }

    /// Unsigned less-than comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lt(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Lt, a, b, 1)
    }

    /// Unsigned less-or-equal comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn le(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Le, a, b, 1)
    }

    /// Unsigned greater-than comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn gt(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Gt, a, b, 1)
    }

    /// Unsigned greater-or-equal comparator.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn ge(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(GateKind::Ge, a, b, 1)
    }

    /// Two-way multiplexor `sel ? then_value : else_value`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not single-bit or the data widths differ.
    pub fn mux(&mut self, sel: NetId, then_value: NetId, else_value: NetId) -> NetId {
        let w = self.net_width(then_value);
        let out = self.add_net(w);
        self.add_gate(GateKind::Mux, [sel, then_value, else_value], out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Concatenation with `high` in the upper bits.
    pub fn concat(&mut self, high: NetId, low: NetId) -> NetId {
        let w = self.net_width(high) + self.net_width(low);
        self.binary(GateKind::Concat, high, low, w)
    }

    /// Bit slice `[lo, lo + width)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the input width.
    pub fn slice(&mut self, a: NetId, lo: usize, width: usize) -> NetId {
        let out = self.add_net(width);
        self.add_gate(GateKind::Slice { lo }, [a], out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Single-bit extraction.
    pub fn bit(&mut self, a: NetId, index: usize) -> NetId {
        self.slice(a, index, 1)
    }

    /// Zero extension to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the input width.
    pub fn zext(&mut self, a: NetId, width: usize) -> NetId {
        let out = self.add_net(width);
        self.add_gate(GateKind::ZeroExt, [a], out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// D flip-flop with an optional initial value; returns the `q` output net.
    ///
    /// The data input may be connected later with [`Netlist::connect_dff_data`]
    /// to allow feedback loops; pass the eventual data net here when it is
    /// already known.
    pub fn dff(&mut self, d: NetId, init: Option<Bv>) -> NetId {
        let w = self.net_width(d);
        let out = self.add_net(w);
        self.add_gate(GateKind::Dff { init }, [d], out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Creates a flip-flop whose data input is connected later (for feedback
    /// paths). Returns `(q, placeholder_d)`: drive logic from `q`, then call
    /// [`Netlist::connect_dff_data`] with the real next-state net.
    pub fn dff_deferred(&mut self, width: usize, init: Option<Bv>) -> (NetId, GateId) {
        let d_placeholder = self.add_net(width);
        let out = self.add_net(width);
        let gate = self
            .add_gate(GateKind::Dff { init }, [d_placeholder], out)
            .expect("dff");
        (out, gate)
    }

    /// Re-points the data input of a deferred flip-flop to `data`.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not a flip-flop or the widths differ.
    pub fn connect_dff_data(&mut self, dff: GateId, data: NetId) {
        assert!(
            self.gates[dff.index()].kind.is_flip_flop(),
            "gate {dff} is not a flip-flop"
        );
        assert_eq!(
            self.net_width(self.gates[dff.index()].output),
            self.net_width(data),
            "flip-flop data width mismatch"
        );
        let old = self.gates[dff.index()].inputs[0];
        self.fanouts[old.index()].retain(|g| *g != dff);
        self.gates[dff.index()].inputs[0] = data;
        self.fanouts[data.index()].push(dff);
    }

    // --- Analysis ------------------------------------------------------------------

    /// Topological order of all non-flip-flop gates, treating primary inputs
    /// and flip-flop outputs as sources.
    ///
    /// # Errors
    ///
    /// Returns [`CombinationalCycleError`] when the combinational logic
    /// contains a cycle.
    pub fn combinational_order(&self) -> Result<Vec<GateId>, CombinationalCycleError> {
        let mut indegree = vec![0usize; self.gates.len()];
        for (gi, gate) in self.gates.iter().enumerate() {
            if gate.kind.is_flip_flop() {
                continue;
            }
            for input in &gate.inputs {
                if let Some(driver) = self.driver[input.index()] {
                    if !self.gates[driver.index()].kind.is_flip_flop() {
                        indegree[gi] += 1;
                    }
                }
            }
        }
        let mut queue: VecDeque<usize> = (0..self.gates.len())
            .filter(|i| !self.gates[*i].kind.is_flip_flop() && indegree[*i] == 0)
            .collect();
        let mut order = Vec::new();
        while let Some(gi) = queue.pop_front() {
            order.push(GateId(gi as u32));
            let out = self.gates[gi].output;
            for reader in &self.fanouts[out.index()] {
                let ri = reader.index();
                if self.gates[ri].kind.is_flip_flop() {
                    continue;
                }
                indegree[ri] -= 1;
                if indegree[ri] == 0 {
                    queue.push_back(ri);
                }
            }
        }
        let comb_total = self.gates.iter().filter(|g| !g.kind.is_flip_flop()).count();
        if order.len() != comb_total {
            // Find a gate still blocked to report a cycle witness.
            let blocked = (0..self.gates.len())
                .find(|i| !self.gates[*i].kind.is_flip_flop() && indegree[*i] > 0)
                .map(|i| self.gates[i].output)
                .unwrap_or(NetId(0));
            return Err(CombinationalCycleError { net: blocked });
        }
        Ok(order)
    }

    /// Nets forming the control/datapath interface: comparator outputs
    /// (data-to-control) and multiplexor select inputs (control-to-data).
    pub fn interface_nets(&self) -> Vec<NetId> {
        let mut nets = Vec::new();
        for (_, gate) in self.gates() {
            if gate.kind.is_comparator() {
                nets.push(gate.output);
            }
            if gate.kind == GateKind::Mux {
                nets.push(gate.inputs[0]);
            }
        }
        nets.sort();
        nets.dedup();
        nets
    }

    /// Aggregate statistics in the shape of the paper's Table 1.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            name: self.name.clone(),
            lines: self.source_lines,
            gates: self.gates.iter().filter(|g| !g.kind.is_flip_flop()).count(),
            flip_flop_bits: self
                .gates
                .iter()
                .filter(|g| g.kind.is_flip_flop())
                .map(|g| self.net_width(g.output))
                .sum(),
            inputs: self.inputs.iter().map(|n| self.net_width(*n)).sum(),
            outputs: self.outputs.iter().map(|(_, n)| self.net_width(*n)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let sum = nl.add(a, b);
        let nine = nl.constant(&Bv::from_u64(4, 9));
        let over = nl.gt(sum, nine);
        nl.mark_output("over", over);
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = demo();
        assert_eq!(nl.gate_count(), 3);
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.outputs().len(), 1);
        let over = nl.outputs()[0].1;
        assert_eq!(nl.net_width(over), 1);
        assert!(nl.is_control_net(over));
        assert!(!nl.is_control_net(nl.inputs()[0]));
        assert_eq!(nl.find_net("a"), Some(nl.inputs()[0]));
        assert_eq!(nl.find_net("over"), Some(over));
        assert!(nl.find_net("missing").is_none());
    }

    #[test]
    fn drivers_and_fanouts() {
        let nl = demo();
        let a = nl.inputs()[0];
        assert!(nl.driver(a).is_none());
        assert_eq!(nl.fanouts(a).len(), 1);
        let over = nl.outputs()[0].1;
        let drv = nl.driver(over).unwrap();
        assert!(nl.gate(drv).kind.is_comparator());
    }

    #[test]
    fn shape_validation() {
        let mut nl = Netlist::new("bad");
        let a = nl.input("a", 4);
        let b = nl.input("b", 8);
        let out = nl.add_net(4);
        assert!(nl.add_gate(GateKind::Add, vec![a, b], out).is_err());
        let out1 = nl.add_net(1);
        assert!(nl.add_gate(GateKind::Eq, vec![a, b], out1).is_err());
        // Output already driven.
        let c = nl.constant(&Bv::from_u64(4, 1));
        let drv = nl.driver(c).unwrap();
        assert!(nl.gate(drv).inputs.is_empty());
        assert!(nl
            .add_gate(GateKind::Const(Bv::from_u64(4, 2)), GateInputs::new(), c)
            .is_err());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let nl = demo();
        let order = nl.combinational_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos = |id: GateId| order.iter().position(|g| *g == id).expect("gate in order");
        // The comparator reads the adder output, so the adder must come first.
        let over = nl.outputs()[0].1;
        let cmp = nl.driver(over).unwrap();
        let sum_net = nl.gate(cmp).inputs[0];
        let adder = nl.driver(sum_net).unwrap();
        assert!(pos(adder) < pos(cmp));
    }

    #[test]
    fn flip_flop_feedback_is_not_a_cycle() {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let next = nl.add(q, one);
        nl.connect_dff_data(ff, next);
        nl.mark_output("count", q);
        assert!(nl.combinational_order().is_ok());
        assert_eq!(nl.flip_flops().len(), 1);
        assert_eq!(nl.stats().flip_flop_bits, 4);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.input("a", 1);
        let fb = nl.add_net(1);
        let x = nl.add_net(1);
        nl.add_gate(GateKind::And, vec![a, fb], x).unwrap();
        nl.add_gate(GateKind::Buf, vec![x], fb).unwrap();
        assert!(nl.combinational_order().is_err());
    }

    #[test]
    fn interface_nets_collect_comparators_and_mux_selects() {
        let mut nl = Netlist::new("iface");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let sel = nl.lt(a, b);
        let m = nl.mux(sel, a, b);
        nl.mark_output("m", m);
        let iface = nl.interface_nets();
        assert_eq!(iface, vec![sel]);
    }

    #[test]
    fn stats_shape() {
        let mut nl = demo();
        nl.set_source_lines(52);
        let s = nl.stats();
        assert_eq!(s.name, "demo");
        assert_eq!(s.lines, 52);
        assert_eq!(s.gates, 3);
        assert_eq!(s.flip_flop_bits, 0);
        assert_eq!(s.inputs, 8);
        assert_eq!(s.outputs, 1);
    }
}
