//! Word-level primitive gates.

use crate::inputs::GateInputs;
use crate::NetId;
use std::fmt;
use wlac_bv::Bv;

/// The kind of a word-level primitive.
///
/// Following the paper's "RTL netlist" model, the primitive set consists of
/// (1) Boolean gates, (2) arithmetic units, (3) comparators (data-to-control),
/// (4) multiplexors (control-to-data), and (5) memory elements (flip-flops),
/// plus structural helpers (constants, slices, concatenation, extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateKind {
    /// Constant driver of the attached value.
    Const(Bv),
    /// Bitwise NOT of one input.
    Not,
    /// Bitwise AND of two or more inputs.
    And,
    /// Bitwise OR of two or more inputs.
    Or,
    /// Bitwise XOR of two or more inputs.
    Xor,
    /// Identity buffer (used by the time-frame expansion to connect frames).
    Buf,
    /// Reduction AND: all bits of the single input, producing one bit.
    ReduceAnd,
    /// Reduction OR of the single input, producing one bit.
    ReduceOr,
    /// Reduction XOR (parity) of the single input, producing one bit.
    ReduceXor,
    /// Modular addition of two inputs.
    Add,
    /// Modular subtraction `in0 - in1`.
    Sub,
    /// Modular multiplication of two inputs.
    Mul,
    /// Logical shift left: `in0 << in1`.
    Shl,
    /// Logical shift right: `in0 >> in1`.
    Shr,
    /// Equality comparator, 1-bit output.
    Eq,
    /// Disequality comparator, 1-bit output.
    Ne,
    /// Unsigned less-than comparator, 1-bit output.
    Lt,
    /// Unsigned less-or-equal comparator, 1-bit output.
    Le,
    /// Unsigned greater-than comparator, 1-bit output.
    Gt,
    /// Unsigned greater-or-equal comparator, 1-bit output.
    Ge,
    /// Two-way multiplexor: inputs `[sel, then_value, else_value]`, output is
    /// `then_value` when `sel == 1`.
    Mux,
    /// Concatenation: `in0` becomes the high part, `in1` the low part.
    Concat,
    /// Bit-slice `[lo, lo + output_width)` of the single input.
    Slice {
        /// Least significant bit of the slice within the input.
        lo: usize,
    },
    /// Zero extension of the single input to the output width.
    ZeroExt,
    /// D flip-flop with optional initial value; input `[d]`, output `q`.
    ///
    /// Asynchronous set/reset are modelled structurally (a mux in front of
    /// the data input) by the front end, as the paper's "quick synthesis"
    /// does; the word-level register implication rules then fall out of the
    /// mux implication rules.
    Dff {
        /// Reset/power-up value of the register; `None` leaves the initial
        /// state unconstrained (it becomes a pseudo-input of frame 0).
        init: Option<Bv>,
    },
}

impl GateKind {
    /// `true` for the comparator primitives (the data-to-control interface).
    pub fn is_comparator(&self) -> bool {
        matches!(
            self,
            GateKind::Eq | GateKind::Ne | GateKind::Lt | GateKind::Le | GateKind::Gt | GateKind::Ge
        )
    }

    /// `true` for arithmetic units (adders, subtractors, multipliers, shifters).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            GateKind::Add | GateKind::Sub | GateKind::Mul | GateKind::Shl | GateKind::Shr
        )
    }

    /// `true` for bitwise Boolean gates.
    pub fn is_boolean(&self) -> bool {
        matches!(
            self,
            GateKind::Not
                | GateKind::And
                | GateKind::Or
                | GateKind::Xor
                | GateKind::Buf
                | GateKind::ReduceAnd
                | GateKind::ReduceOr
                | GateKind::ReduceXor
        )
    }

    /// `true` for memory elements.
    pub fn is_flip_flop(&self) -> bool {
        matches!(self, GateKind::Dff { .. })
    }

    /// Short lowercase mnemonic used in debug dumps and the netlist text format.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::Const(_) => "const",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Buf => "buf",
            GateKind::ReduceAnd => "rand",
            GateKind::ReduceOr => "ror",
            GateKind::ReduceXor => "rxor",
            GateKind::Add => "add",
            GateKind::Sub => "sub",
            GateKind::Mul => "mul",
            GateKind::Shl => "shl",
            GateKind::Shr => "shr",
            GateKind::Eq => "eq",
            GateKind::Ne => "ne",
            GateKind::Lt => "lt",
            GateKind::Le => "le",
            GateKind::Gt => "gt",
            GateKind::Ge => "ge",
            GateKind::Mux => "mux",
            GateKind::Concat => "concat",
            GateKind::Slice { .. } => "slice",
            GateKind::ZeroExt => "zext",
            GateKind::Dff { .. } => "dff",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A gate instance: a primitive kind, its input nets and its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The primitive implemented by this gate.
    pub kind: GateKind,
    /// Input nets, in positional order (see [`GateKind`] for conventions).
    /// Stored inline for up to [`GateInputs::INLINE`] pins; dereferences to
    /// `[NetId]`.
    pub inputs: GateInputs,
    /// The single output net driven by this gate.
    pub output: NetId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(GateKind::Gt.is_comparator());
        assert!(!GateKind::Add.is_comparator());
        assert!(GateKind::Add.is_arithmetic());
        assert!(GateKind::Shl.is_arithmetic());
        assert!(GateKind::And.is_boolean());
        assert!(GateKind::Dff { init: None }.is_flip_flop());
        assert!(!GateKind::Mux.is_boolean());
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(GateKind::Mux.to_string(), "mux");
        assert_eq!(GateKind::Slice { lo: 3 }.to_string(), "slice");
        assert_eq!(GateKind::Const(Bv::from_u64(4, 3)).to_string(), "const");
    }
}
