//! Strongly-typed identifiers for nets and gates.

use std::fmt;

/// Identifier of a net (a named, fixed-width signal) inside a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of the net, usable to index per-net side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index.
    ///
    /// Intended for side tables that were created from [`NetId::index`];
    /// passing an index that does not belong to the owning netlist results in
    /// panics or wrong answers on later lookups.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate (an instance of a word-level primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Raw index of the gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a raw index (see [`NetId::from_index`]).
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index_roundtrip() {
        let n = NetId::from_index(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "n7");
        let g = GateId::from_index(3);
        assert_eq!(g.index(), 3);
        assert_eq!(g.to_string(), "g3");
    }
}
