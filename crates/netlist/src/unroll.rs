//! Time-frame expansion of sequential netlists.
//!
//! The paper handles sequential behaviour by "treating the state elements
//! (D flip-flops) as buffers and adding necessary new variables for the
//! inputs of each time-frame" (Section 4). [`Unrolling`] performs exactly
//! this expansion: the result is a purely combinational netlist in which
//!
//! * every original net has one copy per frame,
//! * every original primary input becomes a fresh primary input per frame,
//! * the frame-0 output of each flip-flop becomes a *pseudo input*
//!   (the initial-state variable, possibly constrained by the reset value),
//! * and for `t > 0` the flip-flop output at frame `t` is a buffer of its
//!   data input at frame `t - 1`.

use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::Netlist;
use wlac_bv::Bv;

/// An initial-state variable of the expanded circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialState {
    /// Net in the expanded circuit carrying the frame-0 flip-flop output.
    pub net: NetId,
    /// The flip-flop gate in the original circuit.
    pub flip_flop: GateId,
    /// Reset/power-up value, when the flip-flop has one.
    pub init: Option<Bv>,
}

/// A sequential netlist expanded over a fixed number of time-frames.
///
/// # Examples
///
/// ```
/// use wlac_netlist::{Netlist, Unrolling};
/// use wlac_bv::Bv;
///
/// // A 4-bit counter.
/// let mut nl = Netlist::new("counter");
/// let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
/// let one = nl.constant(&Bv::from_u64(4, 1));
/// let next = nl.add(q, one);
/// nl.connect_dff_data(ff, next);
/// nl.mark_output("count", q);
///
/// let unrolled = Unrolling::new(&nl, 3);
/// assert_eq!(unrolled.frames(), 3);
/// // One initial-state variable with reset value 0.
/// assert_eq!(unrolled.initial_states().len(), 1);
/// assert!(unrolled.circuit().combinational_order().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Unrolling {
    circuit: Netlist,
    frames: usize,
    /// `net_map[frame][orig.index()]` is the expanded copy of `orig`.
    net_map: Vec<Vec<NetId>>,
    initial_states: Vec<InitialState>,
    /// `origin[expanded.index()]` is `(frame, original net)` — expanded nets
    /// are created densely, so a flat vector replaces the old hash map.
    origin: Vec<(usize, NetId)>,
}

impl Unrolling {
    /// Expands `source` over `frames` time-frames (`frames >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(source: &Netlist, frames: usize) -> Self {
        assert!(frames > 0, "at least one time-frame is required");
        let mut unrolling = Unrolling {
            circuit: Netlist::new(format!("{}#x", source.name())),
            frames: 0,
            net_map: Vec::with_capacity(frames),
            initial_states: Vec::new(),
            origin: Vec::new(),
        };
        unrolling.extend_to(source, frames);
        unrolling
    }

    /// Extends the expansion to at least `frames` time-frames by appending
    /// whole frames; existing expanded nets and gates are untouched, so every
    /// previously returned [`Unrolling::net`] id stays valid.
    ///
    /// A bounded checker deepening its unrolling bound by one frame per
    /// iteration pays the expansion cost once overall instead of once per
    /// bound (the construction used to be quadratic in the final bound).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not the netlist this unrolling was created from
    /// (detected by net count).
    pub fn extend_to(&mut self, source: &Netlist, frames: usize) {
        assert!(
            self.net_map.is_empty() || self.net_map[0].len() == source.net_count(),
            "extend_to called with a different source netlist"
        );
        while self.frames < frames {
            self.append_frame(source);
        }
    }

    /// Appends one time-frame to the expanded circuit.
    ///
    /// Expanded nets deliberately carry no names — nothing consumes them, and
    /// naming every copy of every net dominated the construction cost; use
    /// [`Unrolling::origin`] to map an expanded net back to its source.
    fn append_frame(&mut self, source: &Netlist) {
        let frame = self.frames;
        let circuit = &mut self.circuit;
        let mut frame_nets = Vec::with_capacity(source.net_count());
        for orig in source.nets() {
            let new = circuit.add_net(source.net_width(orig));
            debug_assert_eq!(new.index(), self.origin.len());
            self.origin.push((frame, orig));
            frame_nets.push(new);
        }
        self.net_map.push(frame_nets);

        for (gate_id, gate) in source.gates() {
            let out = self.net_map[frame][gate.output.index()];
            match &gate.kind {
                GateKind::Dff { init } => {
                    if frame == 0 {
                        circuit.mark_input(out);
                        self.initial_states.push(InitialState {
                            net: out,
                            flip_flop: gate_id,
                            init: init.clone(),
                        });
                    } else {
                        let d_prev = self.net_map[frame - 1][gate.inputs[0].index()];
                        circuit
                            .add_gate(GateKind::Buf, [d_prev], out)
                            .expect("frame-connection buffer");
                    }
                }
                kind => {
                    // Collected straight into the inline small-vector: no
                    // per-gate heap allocation for ≤4-pin primitives.
                    let inputs: crate::GateInputs = gate
                        .inputs
                        .iter()
                        .map(|n| self.net_map[frame][n.index()])
                        .collect();
                    circuit
                        .add_gate(kind.clone(), inputs, out)
                        .expect("expanded gate");
                }
            }
        }
        for orig_input in source.inputs() {
            circuit.mark_input(self.net_map[frame][orig_input.index()]);
        }
        for (name, orig_out) in source.outputs() {
            circuit.mark_output(
                format!("{name}@{frame}"),
                self.net_map[frame][orig_out.index()],
            );
        }
        self.frames += 1;
    }

    /// The purely combinational expanded circuit.
    pub fn circuit(&self) -> &Netlist {
        &self.circuit
    }

    /// Number of expanded time-frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The expanded copy of `orig` at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= frames()`.
    pub fn net(&self, frame: usize, orig: NetId) -> NetId {
        self.net_map[frame][orig.index()]
    }

    /// Maps an expanded net back to `(frame, original net)`.
    pub fn origin(&self, expanded: NetId) -> Option<(usize, NetId)> {
        self.origin.get(expanded.index()).copied()
    }

    /// The initial-state variables (frame-0 flip-flop outputs).
    pub fn initial_states(&self) -> &[InitialState] {
        &self.initial_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Netlist {
        let mut nl = Netlist::new("counter");
        let (q, ff) = nl.dff_deferred(4, Some(Bv::zero(4)));
        let one = nl.constant(&Bv::from_u64(4, 1));
        let next = nl.add(q, one);
        nl.connect_dff_data(ff, next);
        nl.mark_output("count", q);
        nl
    }

    #[test]
    fn expansion_is_combinational() {
        let nl = counter();
        let un = Unrolling::new(&nl, 4);
        assert!(un.circuit().combinational_order().is_ok());
        assert_eq!(un.circuit().flip_flops().len(), 0);
        assert_eq!(un.frames(), 4);
    }

    #[test]
    fn frame_zero_flip_flops_become_pseudo_inputs() {
        let nl = counter();
        let un = Unrolling::new(&nl, 2);
        assert_eq!(un.initial_states().len(), 1);
        let init = &un.initial_states()[0];
        assert_eq!(init.init, Some(Bv::zero(4)));
        assert!(un.circuit().inputs().contains(&init.net));
    }

    #[test]
    fn later_frames_buffer_previous_data() {
        let nl = counter();
        let ff = nl.flip_flops()[0];
        let q = nl.gate(ff).output;
        let d = nl.gate(ff).inputs[0];
        let un = Unrolling::new(&nl, 3);
        for frame in 1..3 {
            let q_f = un.net(frame, q);
            let driver = un.circuit().driver(q_f).expect("driven");
            let gate = un.circuit().gate(driver);
            assert_eq!(gate.kind, GateKind::Buf);
            assert_eq!(gate.inputs[0], un.net(frame - 1, d));
        }
    }

    #[test]
    fn per_frame_inputs_and_outputs() {
        let mut nl = Netlist::new("pass");
        let a = nl.input("a", 8);
        nl.mark_output("y", a);
        let un = Unrolling::new(&nl, 3);
        assert_eq!(un.circuit().inputs().len(), 3);
        assert_eq!(un.circuit().outputs().len(), 3);
        assert_eq!(un.circuit().outputs()[1].0, "y@1");
        // Origin bookkeeping round-trips.
        let expanded = un.net(2, a);
        assert_eq!(un.origin(expanded), Some((2, a)));
    }

    #[test]
    #[should_panic(expected = "at least one time-frame")]
    fn zero_frames_rejected() {
        let nl = counter();
        let _ = Unrolling::new(&nl, 0);
    }

    #[test]
    fn expanded_nets_resolve_through_origin_not_names() {
        // Expanded nets carry no names (naming every per-frame copy dominated
        // construction cost); the origin map is the supported way back.
        let nl = counter();
        let un = Unrolling::new(&nl, 2);
        let ff = nl.flip_flops()[0];
        let q = nl.gate(ff).output;
        let q1 = un.net(1, q);
        assert_eq!(un.circuit().net_name(q1), None);
        assert_eq!(un.origin(q1), Some((1, q)));
    }

    #[test]
    fn extending_preserves_existing_frames() {
        let nl = counter();
        let ff = nl.flip_flops()[0];
        let q = nl.gate(ff).output;
        let d = nl.gate(ff).inputs[0];

        let mut incremental = Unrolling::new(&nl, 1);
        let q0 = incremental.net(0, q);
        incremental.extend_to(&nl, 3);
        incremental.extend_to(&nl, 2); // no-op: already deeper
        assert_eq!(incremental.frames(), 3);
        // Ids handed out before the extension stay valid.
        assert_eq!(incremental.net(0, q), q0);

        // The incrementally grown expansion matches a one-shot expansion.
        let oneshot = Unrolling::new(&nl, 3);
        assert_eq!(
            incremental.circuit().gate_count(),
            oneshot.circuit().gate_count()
        );
        assert_eq!(
            incremental.circuit().net_count(),
            oneshot.circuit().net_count()
        );
        assert_eq!(
            incremental.initial_states().len(),
            oneshot.initial_states().len()
        );
        for frame in 1..3 {
            let q_f = incremental.net(frame, q);
            let driver = incremental.circuit().driver(q_f).expect("driven");
            let gate = incremental.circuit().gate(driver);
            assert_eq!(gate.kind, GateKind::Buf);
            assert_eq!(gate.inputs[0], incremental.net(frame - 1, d));
        }
        assert!(incremental.circuit().combinational_order().is_ok());
    }
}
