//! # WLAC — word-level ATPG + modular arithmetic assertion checking
//!
//! A reproduction of Huang & Cheng, *"Assertion Checking by Combined
//! Word-level ATPG and Modular Arithmetic Constraint-Solving Techniques"*
//! (DAC 2000), as a Rust library.
//!
//! This façade crate re-exports the workspace crates under stable module
//! names:
//!
//! * [`bv`] — three-valued bit-vector cubes and ranges,
//! * [`netlist`] — word-level RTL netlists and time-frame expansion,
//! * [`frontend`] — the Verilog-subset parser/elaborator,
//! * [`modsolve`] — modular (mod 2ⁿ) arithmetic constraint solving,
//! * [`sim`] — concrete simulation,
//! * [`atpg`] — the assertion checker itself (word-level implication,
//!   justification, ESTG, datapath resolution),
//! * [`circuits`] — the paper's benchmark designs and properties p1–p14,
//! * [`baselines`] — SAT BMC, integral solving and random simulation,
//! * [`portfolio`] — concurrent multi-strategy racing and batch checking
//!   across the ATPG, SAT BMC and random-simulation engines,
//! * [`service`] — persistent verification sessions: a design registry, a
//!   per-design cross-property learning store (replayed CDCL clauses, ESTG
//!   conflict cubes, datapath infeasibility facts, engine win/loss history)
//!   and a `submit_batch`/`poll`/`results` work-queue front door with a
//!   bounded (LRU) verdict cache,
//! * [`persist`] — versioned, checksummed on-disk snapshots of a design's
//!   knowledge base and verdict cache, written atomically,
//! * [`server`] — the TCP front end: line-delimited JSON protocol,
//!   per-design autosave and restart-warm boot, plus the `wlac-server` and
//!   `wlac-client` binaries.
//!
//! # Quickstart
//!
//! ```
//! use wlac::atpg::{AssertionChecker, Property, Verification};
//! use wlac::bv::Bv;
//! use wlac::netlist::Netlist;
//!
//! // A saturating down-counter must never underflow below zero.
//! let mut nl = Netlist::new("down_counter");
//! let (q, ff) = nl.dff_deferred(8, Some(Bv::from_u64(8, 200)));
//! let zero = nl.constant(&Bv::zero(8));
//! let one = nl.constant(&Bv::from_u64(8, 1));
//! let at_zero = nl.eq(q, zero);
//! let minus = nl.sub(q, one);
//! let next = nl.mux(at_zero, zero, minus);
//! nl.connect_dff_data(ff, next);
//! let limit = nl.constant(&Bv::from_u64(8, 201));
//! let ok = nl.lt(q, limit);
//!
//! let property = Property::always(&nl, "no_overflow", ok);
//! let report = AssertionChecker::with_defaults().check(&Verification::new(nl, property));
//! assert!(report.result.is_pass());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wlac_atpg as atpg;
pub use wlac_baselines as baselines;
pub use wlac_bv as bv;
pub use wlac_circuits as circuits;
pub use wlac_frontend as frontend;
pub use wlac_modsolve as modsolve;
pub use wlac_netlist as netlist;
pub use wlac_persist as persist;
pub use wlac_portfolio as portfolio;
pub use wlac_server as server;
pub use wlac_service as service;
pub use wlac_sim as sim;
pub use wlac_telemetry as telemetry;
